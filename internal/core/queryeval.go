package core

import (
	"sort"
	"strings"

	"passcloud/internal/prov"
)

// This file is the shared in-memory query evaluator: the reference
// semantics of a prov.Query, executed against a materialized provenance
// graph. Every backend uses it in two roles:
//
//   - as the fallback plan, whenever a descriptor (or a filter value) has
//     no native pushdown — the backend materializes its graph once and
//     evaluates here;
//   - as the pushdown oracle: property tests run randomized descriptors
//     through both a backend's native plan and this evaluator over the same
//     records, and any disagreement is a pushdown bug.

// EvalQuery evaluates q against g and returns the matching entries in
// canonical (ref-sorted) order, projected per the descriptor. Pagination
// fields (Limit, Cursor) are ignored — the paging layer slices the
// evaluated result. The returned record slices are shared with g: callers
// must treat them as read-only.
func EvalQuery(g *prov.Graph, q prov.Query) []Entry {
	refs := EvalQueryRefs(g, q)
	out := make([]Entry, len(refs))
	for i, r := range refs {
		out[i] = Entry{Ref: r}
		if q.Projection == prov.ProjectFull {
			out[i].Records = g.Records(r)
		}
	}
	return out
}

// EvalQueryRefs is EvalQuery's reference set: seeds filtered by the
// descriptor, traversed if a direction is set, in canonical sorted order.
func EvalQueryRefs(g *prov.Graph, q prov.Query) []prov.Ref {
	seeds := evalSeeds(g, q)
	if q.Direction == prov.TraverseNone {
		sorted := append([]prov.Ref(nil), seeds...)
		prov.SortRefs(sorted)
		return sorted
	}

	next := g.Inputs
	if q.Direction == prov.TraverseDescendants {
		next = g.Children
	}

	isSeed := make(map[prov.Ref]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s] = true
	}

	// Level-bounded BFS from the seeds. A node is a result when reached by
	// the traversal; seeds count as results only when reached AND
	// IncludeSeeds is set. visited guards expansion, found guards output.
	visited := make(map[prov.Ref]bool, len(seeds))
	found := make(map[prov.Ref]bool)
	frontier := append([]prov.Ref(nil), seeds...)
	for _, s := range seeds {
		visited[s] = true
	}
	var out []prov.Ref
	for level := 0; len(frontier) > 0 && (q.Depth == 0 || level < q.Depth); level++ {
		var nextFrontier []prov.Ref
		for _, r := range frontier {
			for _, n := range next(r) {
				if !found[n] && (q.IncludeSeeds || !isSeed[n]) {
					found[n] = true
					out = append(out, n)
				}
				if !visited[n] {
					visited[n] = true
					nextFrontier = append(nextFrontier, n)
				}
			}
		}
		frontier = nextFrontier
	}
	prov.SortRefs(out)
	return out
}

// evalSeeds returns the seed set selected by q's filters, unordered.
func evalSeeds(g *prov.Graph, q prov.Query) []prov.Ref {
	if len(q.Refs) > 0 {
		// Pinned seeds: exactly these versions, intersected with any other
		// filters. Pinned refs need not exist in the graph (an ancestry
		// walk may start at a version whose own records are elsewhere).
		var out []prov.Ref
		seen := make(map[prov.Ref]bool, len(q.Refs))
		for _, r := range q.Refs {
			if seen[r] {
				continue
			}
			seen[r] = true
			if matchesFilters(g, r, q, true) {
				out = append(out, r)
			}
		}
		return out
	}
	pool := g.Subjects()
	if q.Direction == prov.TraverseDescendants {
		// A descendants traversal must also seed refs that exist only as
		// input edges: an S3-only overwrite erases the superseded version's
		// records from the scan graph, yet its consumers still name it as
		// an input — and SimpleDB's native starts-with plan matches those
		// input values directly. Edge-only refs have no records, so they
		// can pass only record-free filters (RefPrefix, or none); they are
		// never reached by the traversal (children are always subjects), so
		// this only adds results.
		for _, src := range g.EdgeSources() {
			if !g.Has(src) {
				pool = append(pool, src)
			}
		}
	}
	var out []prov.Ref
	for _, subject := range pool {
		if matchesFilters(g, subject, q, false) {
			out = append(out, subject)
		}
	}
	return out
}

// matchesFilters reports whether ref passes every non-Refs filter of q.
// pinned relaxes record-existence for descriptors that only pin refs.
func matchesFilters(g *prov.Graph, ref prov.Ref, q prov.Query, pinned bool) bool {
	if q.RefPrefix != "" && !strings.HasPrefix(ref.String(), q.RefPrefix) {
		return false
	}
	attrs := q.AttrFilters()
	if q.Tool == "" && len(attrs) == 0 {
		return true
	}
	if !g.Has(ref) && !pinned {
		return false
	}
	for _, f := range attrs {
		if !MatchRecords(g.Records(ref), f.Attr, f.Value) {
			return false
		}
	}
	if q.Tool != "" {
		ok := false
		for _, in := range g.Inputs(ref) {
			if MatchRecords(g.Records(in), prov.AttrName, q.Tool) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// MatchRecords reports whether any record asserts attr = value — the
// multi-valued-attribute rule SimpleDB predicates follow, applied to
// decoded records.
func MatchRecords(records []prov.Record, attr, value string) bool {
	for _, r := range records {
		if r.Attr == attr && r.Value.String() == value {
			return true
		}
	}
	return false
}

// SortEntries orders entries canonically by ref — the stable total order
// pagination slices.
func SortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Ref.Object != entries[j].Ref.Object {
			return entries[i].Ref.Object < entries[j].Ref.Object
		}
		return entries[i].Ref.Version < entries[j].Ref.Version
	})
}
