package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPointerValueRoundTrip(t *testing.T) {
	key, literal, isPtr := DecodeValue(PointerValue("prov/foo_2/0"))
	if !isPtr || key != "prov/foo_2/0" || literal != "" {
		t.Fatalf("pointer decode: %q %q %v", key, literal, isPtr)
	}
}

func TestLiteralEscaping(t *testing.T) {
	cases := []string{
		"plain value",
		"",
		"\x1e starts with the mark",
		"\x1e\x1e doubled",
		"mid\x1edle",
	}
	for _, v := range cases {
		key, literal, isPtr := DecodeValue(EscapeLiteral(v))
		if isPtr {
			t.Fatalf("literal %q decoded as pointer %q", v, key)
		}
		if literal != v {
			t.Fatalf("literal %q round-tripped to %q", v, literal)
		}
	}
}

func TestLiteralEscapingQuick(t *testing.T) {
	f := func(v string) bool {
		_, literal, isPtr := DecodeValue(EscapeLiteral(v))
		return !isPtr && literal == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointerLiteralSeparation(t *testing.T) {
	// A pointer and an escaped literal with the same tail must not
	// collide.
	p := PointerValue("key")
	l := EscapeLiteral("\x1ekey")
	if p == l {
		t.Fatal("pointer and escaped literal encode identically")
	}
}

func TestPropertiesReadCorrectness(t *testing.T) {
	p := Properties{Atomicity: true, Consistency: true}
	if !p.ReadCorrectness() {
		t.Fatal("atomicity+consistency should give read correctness")
	}
	p.Atomicity = false
	if p.ReadCorrectness() {
		t.Fatal("read correctness without atomicity")
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrNotFound, ErrInconsistent, ErrNoProvenance}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && a == b {
				t.Fatalf("errors %d and %d identical", i, j)
			}
		}
		if !strings.Contains(a.Error(), "core:") {
			t.Fatalf("error %v missing package prefix", a)
		}
	}
}

func TestOverflowThresholdIs1KB(t *testing.T) {
	if OverflowThreshold != 1024 {
		t.Fatalf("OverflowThreshold = %d; the paper's limit is 1 KB", OverflowThreshold)
	}
}
