package core

import "strings"

// Provenance values that exceed a backend's value-size limit are stored as
// separate S3 objects and referenced by pointer (paper §4.1/§4.2: "we store
// any record larger than 1KB in a separate S3 object"). A pointer value is
// the overflow object's key prefixed with pointerMark; literal values that
// happen to begin with the mark are escaped by doubling it.
const pointerMark = "\x1e"

// PointerValue renders an overflow pointer to the given S3 key.
func PointerValue(key string) string { return pointerMark + key }

// EscapeLiteral protects a literal value from being misread as a pointer.
func EscapeLiteral(v string) string {
	if strings.HasPrefix(v, pointerMark) {
		return pointerMark + pointerMark + v[1:]
	}
	return v
}

// DecodeValue classifies a stored value: a pointer (returning the key) or a
// literal (returning the unescaped value).
func DecodeValue(v string) (key string, literal string, isPointer bool) {
	if !strings.HasPrefix(v, pointerMark) {
		return "", v, false
	}
	rest := v[1:]
	if strings.HasPrefix(rest, pointerMark) {
		return "", pointerMark + rest[1:], false // escaped literal
	}
	return rest, "", true
}

// OverflowThreshold is the record-value size above which the paper diverts
// the value to its own S3 object (1 KB).
const OverflowThreshold = 1 << 10
