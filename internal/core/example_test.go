package core_test

import (
	"errors"
	"fmt"

	"passcloud/internal/core"
	"passcloud/internal/prov"
)

// ExamplePartialWriteError shows the partial-batch recovery contract: a
// store that half-lands a batch returns a typed error naming the events
// that ARE durable, and the caller retries only the remainder — never
// re-writing what landed, never dropping what did not.
func ExamplePartialWriteError() {
	batch := []prov.Ref{
		{Object: "/a", Version: 1},
		{Object: "/b", Version: 1},
		{Object: "/c", Version: 1},
	}

	// A store's PutBatch failed after /a and /b landed durably.
	err := core.PartialWrite(batch[:2], errors.New("simpledb: throttled"))

	var pw *core.PartialWriteError
	if errors.As(err, &pw) {
		landed := make(map[prov.Ref]bool)
		for _, ref := range pw.LandedRefs() {
			landed[ref] = true
		}
		var retry []prov.Ref
		for _, ref := range batch {
			if !landed[ref] {
				retry = append(retry, ref)
			}
		}
		fmt.Printf("landed: %d of %d\n", len(pw.LandedRefs()), len(batch))
		fmt.Printf("retry:  %v\n", retry)
		fmt.Printf("cause:  %v\n", pw.Unwrap())
	}
	// Output:
	// landed: 2 of 3
	// retry:  [/c:1]
	// cause:  simpledb: throttled
}
