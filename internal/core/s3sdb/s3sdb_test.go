package s3sdb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

func newTestStore(t *testing.T, faults *sim.FaultPlan, maxDelay time.Duration) (*Store, *cloud.Cloud) {
	t.Helper()
	cl := cloud.New(cloud.Config{Seed: 1, MaxDelay: maxDelay})
	st, err := New(Config{Cloud: cl, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	return st, cl
}

func fileEvent(object string, version int, data string, records ...prov.Record) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(object), Version: prov.Version(version)}
	base := []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeFile),
		prov.NewString(ref, prov.AttrName, object),
	}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: []byte(data), Records: append(base, records...)}
}

func procEvent(name string, pid int, records ...prov.Record) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("proc/%d/%s", pid, name)), Version: 0}
	base := []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeProcess),
		prov.NewString(ref, prov.AttrName, name),
	}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeProcess, Records: append(base, records...)}
}

func TestPutGetRoundTrip(t *testing.T) {
	st, _ := newTestStore(t, nil, 0)
	ctx := context.Background()
	if err := core.Put(ctx, st, fileEvent("/out", 0, "payload")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(ctx, "/out")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte("payload")) || len(got.Records) != 2 {
		t.Fatalf("got = %+v", got)
	}
}

func TestTransientSubjectsGetItemsButNoObjects(t *testing.T) {
	st, cl := newTestStore(t, nil, 0)
	ctx := context.Background()
	proc := procEvent("tool", 5)

	putsBefore := cl.Usage().OpCount(billing.S3, "PUT")
	if err := core.Put(ctx, st, proc); err != nil {
		t.Fatal(err)
	}
	if got := cl.Usage().OpCount(billing.S3, "PUT") - putsBefore; got != 0 {
		t.Fatalf("transient flush issued %d S3 PUTs", got)
	}
	records, err := st.Provenance(ctx, proc.Ref)
	if err != nil || len(records) != 2 {
		t.Fatalf("Provenance = %v, %v", records, err)
	}
}

func TestConsistencyDetectionAndRetry(t *testing.T) {
	// With propagation delay, a read can pair fresh data with stale
	// provenance. VerifiedGet must detect via MD5 and retry until both
	// sides agree — never returning a torn pair.
	st, cl := newTestStore(t, nil, 20*time.Second)
	ctx := context.Background()

	for v := 0; v < 3; v++ {
		ref := prov.Ref{Object: "/d", Version: prov.Version(v)}
		ev := pass.FlushEvent{Ref: ref, Type: prov.TypeFile,
			Data: []byte(fmt.Sprintf("generation-%d", v)),
			Records: []prov.Record{
				prov.NewString(ref, prov.AttrType, prov.TypeFile),
				prov.NewString(ref, prov.AttrEnv, fmt.Sprintf("generation-%d", v)),
			}}
		if err := core.Put(ctx, st, ev); err != nil {
			t.Fatal(err)
		}
		cl.Clock.Advance(3 * time.Second) // partial propagation between puts
	}

	for i := 0; i < 50; i++ {
		obj, err := st.Get(ctx, "/d")
		if err != nil {
			if errors.Is(err, core.ErrInconsistent) || errors.Is(err, core.ErrNotFound) || errors.Is(err, core.ErrNoProvenance) {
				continue // surfaced, not hidden: acceptable
			}
			t.Fatal(err)
		}
		var envVal string
		for _, r := range obj.Records {
			if r.Attr == prov.AttrEnv {
				envVal = r.Value.Str
			}
		}
		if string(obj.Data) != envVal {
			t.Fatalf("torn read escaped verification: data %q prov %q", obj.Data, envVal)
		}
	}
}

func TestSameContentOverwriteDetectedByNonce(t *testing.T) {
	// "The MD5sum of the data itself (without the nonce) is sufficient to
	// detect inconsistency in most cases, except when a file is
	// overwritten with the same data." The nonce closes that hole: the
	// consistency records of the two versions must differ even though the
	// bytes are identical.
	st, _ := newTestStore(t, nil, 0)
	ctx := context.Background()

	if err := core.Put(ctx, st, fileEvent("/same", 0, "identical bytes")); err != nil {
		t.Fatal(err)
	}
	_, md5v0, ok, err := st.Layer().FetchItem(context.Background(), prov.Ref{Object: "/same", Version: 0})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if err := core.Put(ctx, st, fileEvent("/same", 1, "identical bytes")); err != nil {
		t.Fatal(err)
	}
	_, md5v1, ok, err := st.Layer().FetchItem(context.Background(), prov.Ref{Object: "/same", Version: 1})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if md5v0 == md5v1 {
		t.Fatal("identical data produced identical consistency records; nonce not effective")
	}
	// And the read still verifies.
	if _, err := st.Get(ctx, "/same"); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicityViolationOrphanProvenance(t *testing.T) {
	// The §4.2 crash: provenance stored, client dies before the data PUT.
	faults := sim.NewFaultPlan()
	faults.Arm("s3sdb/after-prov")
	st, _ := newTestStore(t, faults, 0)
	ctx := context.Background()

	err := core.Put(ctx, st, fileEvent("/orphaned", 0, "never lands"))
	if !errors.Is(err, sim.ErrCrash) {
		t.Fatalf("err = %v, want injected crash", err)
	}

	// Provenance exists...
	records, err := st.Provenance(ctx, prov.Ref{Object: "/orphaned", Version: 0})
	if err != nil || len(records) == 0 {
		t.Fatalf("orphan provenance missing: %v, %v", records, err)
	}
	// ...but the data does not: atomicity violated, surfaced on read.
	if _, err := st.Get(ctx, "/orphaned"); err == nil {
		t.Fatal("Get succeeded without data")
	}

	// Recovery: the full-domain orphan scan removes it.
	orphans, err := st.OrphanScan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 1 || orphans[0] != (prov.Ref{Object: "/orphaned", Version: 0}) {
		t.Fatalf("OrphanScan = %v", orphans)
	}
	if _, err := st.Provenance(ctx, prov.Ref{Object: "/orphaned", Version: 0}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("orphan survived the scan: %v", err)
	}
}

func TestOrphanScanSparesHealthyItems(t *testing.T) {
	st, _ := newTestStore(t, nil, 0)
	ctx := context.Background()
	if err := core.Put(ctx, st, fileEvent("/healthy", 0, "x")); err != nil {
		t.Fatal(err)
	}
	if err := core.Put(ctx, st, procEvent("tool", 3)); err != nil {
		t.Fatal(err)
	}
	// Old version items are history, not orphans.
	if err := core.Put(ctx, st, fileEvent("/healthy", 1, "y")); err != nil {
		t.Fatal(err)
	}
	orphans, err := st.OrphanScan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 0 {
		t.Fatalf("scan removed healthy items: %v", orphans)
	}
}

func TestOverflowValuesToS3(t *testing.T) {
	st, cl := newTestStore(t, nil, 0)
	ctx := context.Background()
	big := strings.Repeat("E", 2000)
	ref := prov.Ref{Object: "/big", Version: 0}
	ev := fileEvent("/big", 0, "x", prov.NewString(ref, prov.AttrEnv, big))

	before := cl.Usage().OpCount(billing.S3, "PUT")
	if err := core.Put(ctx, st, ev); err != nil {
		t.Fatal(err)
	}
	if got := cl.Usage().OpCount(billing.S3, "PUT") - before; got != 2 {
		t.Fatalf("PUTs = %d, want 2 (overflow + data)", got)
	}
	records, err := st.Provenance(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range records {
		if r.Attr == prov.AttrEnv && r.Value.Str == big {
			found = true
		}
	}
	if !found {
		t.Fatal("overflowed value not restored")
	}
}

func TestChunkedPutAttributes(t *testing.T) {
	st, cl := newTestStore(t, nil, 0)
	ctx := context.Background()
	ref := prov.Ref{Object: "/many", Version: 0}
	var extra []prov.Record
	for i := 0; i < 150; i++ {
		extra = append(extra, prov.NewInput(ref, prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/dep%03d", i))}))
	}
	before := cl.Usage().OpCount(billing.SimpleDB, "PutAttributes")
	if err := core.Put(ctx, st, fileEvent("/many", 0, "x", extra...)); err != nil {
		t.Fatal(err)
	}
	// 152 records + md5 = 153 attrs -> 2 calls of 100 + 53.
	if got := cl.Usage().OpCount(billing.SimpleDB, "PutAttributes") - before; got != 2 {
		t.Fatalf("PutAttributes calls = %d, want 2", got)
	}
	records, err := st.Provenance(ctx, ref)
	if err != nil || len(records) != 152 {
		t.Fatalf("records = %d, %v", len(records), err)
	}
}

func TestQueries(t *testing.T) {
	st, cl := newTestStore(t, nil, 0)
	ctx := context.Background()

	blast := procEvent("blast", 1)
	other := procEvent("other", 2)
	out1 := fileEvent("/out1", 0, "a", prov.NewInput(prov.Ref{Object: "/out1"}, blast.Ref))
	out2 := fileEvent("/out2", 0, "b", prov.NewInput(prov.Ref{Object: "/out2"}, other.Ref))
	child := fileEvent("/child", 0, "c", prov.NewInput(prov.Ref{Object: "/child"}, prov.Ref{Object: "/out1"}))
	grand := fileEvent("/grand", 0, "d", prov.NewInput(prov.Ref{Object: "/grand"}, prov.Ref{Object: "/child"}))
	for _, ev := range []pass.FlushEvent{blast, out1, other, out2, child, grand} {
		if err := core.Put(ctx, st, ev); err != nil {
			t.Fatal(err)
		}
	}

	headsBefore := cl.Usage().OpCount(billing.S3, "HEAD")
	queriesBefore := cl.Usage().OpCount(billing.SimpleDB, "Query")

	outputs, err := st.OutputsOf(ctx, "blast")
	if err != nil || len(outputs) != 1 || outputs[0].Object != "/out1" {
		t.Fatalf("OutputsOf = %v, %v", outputs, err)
	}
	desc, err := st.DescendantsOfOutputs(ctx, "blast")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 2 {
		t.Fatalf("DescendantsOfOutputs = %v", desc)
	}

	// Efficiency: indexed queries, no S3 scans.
	if got := cl.Usage().OpCount(billing.S3, "HEAD") - headsBefore; got != 0 {
		t.Fatalf("queries issued %d HEADs; SimpleDB path must not scan S3", got)
	}
	if got := cl.Usage().OpCount(billing.SimpleDB, "Query") - queriesBefore; got == 0 {
		t.Fatal("no SimpleDB queries issued")
	}

	all, err := st.AllProvenance(ctx)
	if err != nil || len(all) != 6 {
		t.Fatalf("AllProvenance = %d subjects, %v", len(all), err)
	}
}

func TestPropertiesRow(t *testing.T) {
	st, _ := newTestStore(t, nil, 0)
	p := st.Properties()
	if p.Atomicity || !p.Consistency || !p.CausalOrdering || !p.EfficientQuery {
		t.Fatalf("properties = %+v, want Table 1 row 2", p)
	}
	if p.ReadCorrectness() {
		t.Fatal("read correctness must not hold without atomicity")
	}
	if st.Name() != "s3+sdb" {
		t.Fatalf("Name = %q", st.Name())
	}
}

func TestFullWorkloadThroughStore(t *testing.T) {
	st, _ := newTestStore(t, nil, 0)
	ctx := context.Background()
	sys := pass.NewSystem(pass.Config{Flush: core.Flusher(st)})

	if err := sys.Ingest(ctx, "/in", []byte("input")); err != nil {
		t.Fatal(err)
	}
	p := sys.Exec(nil, pass.ExecSpec{Name: "tool"})
	if err := sys.Read(p, "/in"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write(p, "/out", []byte("result"), pass.Truncate); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(ctx, p, "/out"); err != nil {
		t.Fatal(err)
	}

	obj, err := st.Get(ctx, "/out")
	if err != nil || string(obj.Data) != "result" {
		t.Fatalf("Get = %v, %v", obj, err)
	}
	outputs, err := st.OutputsOf(ctx, "tool")
	if err != nil || len(outputs) != 1 {
		t.Fatalf("OutputsOf = %v, %v", outputs, err)
	}
}

func TestVerifiedGetSurfacesNoProvenance(t *testing.T) {
	// Data without provenance (planted directly) must surface as
	// ErrNoProvenance, not as a silent success.
	st, cl := newTestStore(t, nil, 0)
	ctx := context.Background()
	meta := map[string]string{sdbprov.MetaNonce: "0-abcd", sdbprov.MetaVersion: "0"}
	if err := cl.S3.Put(st.Layer().Bucket(), sdbprov.DataKey("/bare"), []byte("x"), meta); err != nil {
		t.Fatal(err)
	}
	_, err := st.Get(ctx, "/bare")
	if !errors.Is(err, core.ErrNoProvenance) {
		t.Fatalf("err = %v, want ErrNoProvenance", err)
	}
}

// TestConcurrentQueriesDuringWrites runs cached queries from several
// goroutines while writes land — meant for -race. No query may error, no
// query may observe more outputs than have been written, and once writes
// stop the cache must serve the complete, fresh result.
func TestConcurrentQueriesDuringWrites(t *testing.T) {
	st, _ := newTestStore(t, nil, 0)
	ctx := context.Background()

	tool := procEvent("tool", 1)
	if err := core.Put(ctx, st, tool); err != nil {
		t.Fatal(err)
	}
	const writes = 30
	var wg sync.WaitGroup
	var written atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			// Count the write as started before it can become visible, so
			// `written` is always an upper bound on what any query sees.
			written.Add(1)
			ev := fileEvent(fmt.Sprintf("/c/%02d", i), 0, "x",
				prov.NewInput(prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/c/%02d", i))}, tool.Ref))
			if err := core.Put(ctx, st, ev); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				outputs, err := st.OutputsOf(ctx, "tool")
				if err != nil {
					t.Errorf("OutputsOf: %v", err)
					return
				}
				if n := written.Load(); int64(len(outputs)) > n {
					t.Errorf("query observed %d outputs with only %d writes started", len(outputs), n)
					return
				}
				if _, err := st.AllProvenance(ctx); err != nil {
					t.Errorf("AllProvenance: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	outputs, err := st.OutputsOf(ctx, "tool")
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != writes {
		t.Fatalf("final OutputsOf = %d, want %d (stale snapshot after writes stopped)", len(outputs), writes)
	}
}
