package s3sdb

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/retry"
	"passcloud/internal/core"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

func flushFile(object string, version int, data string) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(object), Version: prov.Version(version)}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: []byte(data), Records: []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeFile),
		prov.NewString(ref, prov.AttrName, object),
	}}
}

func flushProc(name string) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID("proc/1/" + name), Version: 0}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeProcess, Records: []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeProcess),
		prov.NewString(ref, prov.AttrName, name),
	}}
}

// tightRetry exhausts fast so permanent-style windows surface quickly.
var tightRetry = retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Budget: 10 * time.Millisecond}

// TestPutBatchPartialFailureListsLandedEvents: when the data phase sinks
// mid-batch, the typed error must list exactly the fully persisted events —
// the transients (provenance-only, landed in step 3) and the files whose
// data PUT completed — and never a file whose provenance landed without
// data.
func TestPutBatchPartialFailureListsLandedEvents(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 1, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults, Retry: tightRetry})
	if err != nil {
		t.Fatal(err)
	}

	proc := flushProc("tool")
	f1 := flushFile("/a", 0, "one")
	f2 := flushFile("/b", 0, "two")
	// Fail the SECOND data PUT (first file lands, second does not) with a
	// permanent error; permanent errors surface without retry, so one
	// fault is one failed batch, and the later repair sails through.
	faults.ArmOp("s3/PUT", sim.ClassPermanent, 1, 1)

	err = st.PutBatch(ctx, []pass.FlushEvent{proc, f1, f2})
	if err == nil {
		t.Fatal("expected the injected fault to fail the batch")
	}
	var pw *core.PartialWriteError
	if !errors.As(err, &pw) {
		t.Fatalf("expected PartialWriteError, got %T: %v", err, err)
	}
	want := map[prov.Ref]bool{proc.Ref: true, f1.Ref: true}
	if len(pw.Landed) != len(want) {
		t.Fatalf("landed = %v, want transients + first file", pw.Landed)
	}
	for _, ref := range pw.Landed {
		if !want[ref] {
			t.Errorf("ref %s reported landed; it must not be (data never PUT)", ref)
		}
	}

	// The surviving half is an orphan until repaired; the retry must
	// complete the batch idempotently.
	cl.Settle()
	if err := st.PutBatch(ctx, []pass.FlushEvent{f2}); err != nil {
		t.Fatalf("retry of the unlanded remainder: %v", err)
	}
	cl.Settle()
	for _, f := range []pass.FlushEvent{f1, f2} {
		obj, err := st.Get(ctx, f.Ref.Object)
		if err != nil {
			t.Fatalf("get %s: %v", f.Ref.Object, err)
		}
		if string(obj.Data) != string(f.Data) {
			t.Errorf("%s: data %q, want %q", f.Ref.Object, obj.Data, f.Data)
		}
	}
}

// TestWriteEncodedBatchPartialFailureListsLandedGroups: a 25+ item batch
// spans several BatchPutAttributes groups; when a later group fails, the
// typed error names the subjects of the groups that flushed, so callers can
// tell a half-landed batch from an all-or-nothing failure.
func TestWriteEncodedBatchPartialFailureListsLandedGroups(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 2, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults, Retry: tightRetry})
	if err != nil {
		t.Fatal(err)
	}
	layer := st.Layer()

	var writes []sdbprov.ItemWrite
	for i := 0; i < 30; i++ { // 2 groups: 25 + 5
		ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/batch/%02d", i)), Version: 0}
		writes = append(writes, sdbprov.ItemWrite{Subject: ref, Records: []prov.Record{
			prov.NewString(ref, prov.AttrType, prov.TypeFile),
		}})
	}
	// First group lands; second group fails permanently.
	faults.ArmOp("sdb/BatchPutAttributes", sim.ClassPermanent, 1, 8)

	err = layer.WriteEncodedBatch(ctx, writes, "test")
	if err == nil {
		t.Fatal("expected the injected fault to fail the batch")
	}
	var pw *core.PartialWriteError
	if !errors.As(err, &pw) {
		t.Fatalf("expected PartialWriteError, got %T: %v", err, err)
	}
	if len(pw.Landed) != 25 {
		t.Fatalf("landed %d subjects, want the first full group of 25", len(pw.Landed))
	}
	for i, ref := range pw.Landed {
		if ref != writes[i].Subject {
			t.Fatalf("landed[%d] = %s, want %s (batch order)", i, ref, writes[i].Subject)
		}
	}
}

// TestOrphanScanDoesNotReapFreshWrites: a Head served by a stale replica
// right after a write must not get live provenance deleted — candidates are
// re-verified after the propagation horizon.
func TestOrphanScanDoesNotReapFreshWrites(t *testing.T) {
	ctx := context.Background()
	cl := cloud.New(cloud.Config{Seed: 9, MaxDelay: 5 * time.Second})
	st, err := New(Config{Cloud: cl})
	if err != nil {
		t.Fatal(err)
	}
	// Write and scan immediately — no settle, so replicas may not have the
	// data yet.
	if err := st.PutBatch(ctx, []pass.FlushEvent{flushFile("/fresh", 0, "x")}); err != nil {
		t.Fatal(err)
	}
	removed, err := st.OrphanScan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("orphan scan reaped live provenance: %v", removed)
	}
	cl.Settle()
	if _, err := st.Get(ctx, "/fresh"); err != nil {
		t.Fatalf("object unreadable after scan: %v", err)
	}
}
