package s3sdb

import (
	"context"
	"testing"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// TestFailedForeignWriteKeepsExplainExactAndCacheWarm is the phantom-
// invalidation regression: a write that errors before landing changes no
// state, so it must neither degrade this client's Explain from Exact to
// estimate nor expire its query-cache snapshot. Before the fix, failed
// mutating requests were metered under the same ledger key as successful
// ones, so the write tracker counted them as foreign mutations and the
// cache stamp moved — skewing Explain's Exact/estimate decision and
// forcing a full re-scan, for a write that never happened.
func TestFailedForeignWriteKeepsExplainExactAndCacheWarm(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 11, Faults: faults})
	a, err := New(Config{Cloud: cl})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PutBatch(ctx, []pass.FlushEvent{flushFile("/mine", 0, "data")}); err != nil {
		t.Fatal(err)
	}
	cl.Settle()

	// Warm the snapshot and establish the baseline plan.
	if _, err := core.AllProvenance(ctx, a); err != nil {
		t.Fatal(err)
	}
	if plan := a.Explain(prov.Q1()); !plan.Exact {
		t.Fatalf("baseline plan should be exact (no foreign writes): %+v", plan)
	}
	warmOps := cl.Usage().TotalOps()
	if _, err := core.AllProvenance(ctx, a); err != nil {
		t.Fatal(err)
	}
	if d := cl.Usage().TotalOps() - warmOps; d != 0 {
		t.Fatalf("warm repeat cost %d ops, want 0", d)
	}

	// A second client's write fails before landing: every one of its
	// mutating requests is rejected.
	b, err := New(Config{Cloud: cl, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	faults.ArmOp("sdb/BatchPutAttributes", sim.ClassPermanent, 0, 4)
	faults.ArmOp("s3/PUT", sim.ClassPermanent, 0, 4)
	if err := b.PutBatch(ctx, []pass.FlushEvent{flushFile("/theirs", 0, "x")}); err == nil {
		t.Fatal("expected the injected fault to fail b's write")
	}

	// The rejected requests are still billed — under the error-suffixed
	// ledger keys, which is exactly why the counters below stay clean.
	if n := cl.Usage().FailedOps(billing.SimpleDB) + cl.Usage().FailedOps(billing.S3); n == 0 {
		t.Fatal("injected failures were not billed as failed requests")
	}

	// Nothing landed, so a's view must be unchanged: plan still exact,
	// snapshot still warm.
	if plan := a.Explain(prov.Q1()); !plan.Exact {
		t.Fatalf("failed foreign write degraded Explain to estimate: %+v", plan)
	}
	before := cl.Usage().TotalOps()
	if _, err := core.AllProvenance(ctx, a); err != nil {
		t.Fatal(err)
	}
	if d := cl.Usage().TotalOps() - before; d != 0 {
		t.Fatalf("failed foreign write expired the snapshot: repeat cost %d ops, want 0", d)
	}
	if f := a.Layer().ForeignWrites(); f != 0 {
		t.Fatalf("tracker attributes %d foreign mutations to a write that never landed", f)
	}
}

// TestFailedOwnWriteKeepsExplainExact: this client's own failed batch must
// not leave phantom state in the planner either — Explain stays exact and
// the catalog holds no phantom items (covered in sdbprov tests) even
// though the cache conservatively invalidates.
func TestFailedOwnWriteKeepsExplainExact(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 12, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutBatch(ctx, []pass.FlushEvent{flushFile("/base", 0, "data")}); err != nil {
		t.Fatal(err)
	}
	cl.Settle()

	faults.ArmOp("sdb/BatchPutAttributes", sim.ClassPermanent, 0, 4)
	faults.ArmOp("s3/PUT", sim.ClassPermanent, 0, 4)
	if err := st.PutBatch(ctx, []pass.FlushEvent{flushFile("/fail", 0, "y")}); err == nil {
		t.Fatal("expected the injected fault to fail the write")
	}
	if plan := st.Explain(prov.Q1()); !plan.Exact {
		t.Fatalf("own failed write degraded Explain to estimate: %+v", plan)
	}
	// And the failed subject must not appear in query results.
	all, err := core.AllProvenance(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	for ref := range all {
		if ref.Object == "/fail" {
			t.Fatalf("failed write's subject %s is query-visible", ref)
		}
	}
}
