// Package s3sdb implements the paper's second architecture (§4.2,
// Figure 2): data in S3, provenance in SimpleDB. SimpleDB's automatic
// indexing buys efficient queries; what the architecture gives up is
// atomicity — "a client crashes after storing the provenance of object on
// SimpleDB but before storing the object on S3. Clearly atomicity is
// violated here as provenance is recorded but not the data."
//
// The write protocol follows §4.2 exactly:
//
//  1. convert each provenance record into attribute-value pairs; values
//     above 1 KB go to S3 objects with pointers left behind;
//  2. add the MD5(data‖nonce) consistency record;
//  3. store the item with (possibly several) PutAttributes calls;
//  4. PUT the data to S3 with the nonce in its metadata.
//
// Consistency survives eventual consistency because reads verify the MD5
// and reissue until data and provenance agree (sdbprov.VerifiedGet).
// Recovery from the atomicity hole is the inelegant full-domain orphan scan
// the paper describes — implemented here as OrphanScan so the cost is
// measurable.
package s3sdb

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"strconv"
	"sync"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/retry"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// Config parameterizes the store.
type Config struct {
	// Cloud supplies S3 and SimpleDB. Required.
	Cloud *cloud.Cloud
	// Bucket and Domain follow sdbprov defaults when empty.
	Bucket string
	Domain string
	// Faults optionally injects client crashes at protocol points.
	Faults *sim.FaultPlan
	// MaxReadRetries bounds the consistency retry loop.
	MaxReadRetries int
	// DisableQueryCache turns off the sdbprov layer's generation-stamped
	// query cache, restoring the paper's one-query-run-per-call costs.
	DisableQueryCache bool
	// Retry bounds the transient-error backoff around every cloud call.
	Retry retry.Policy
	// Writer identifies this client in integrity checkpoints (default "w").
	Writer string
	// DisableIntegrity turns off the Merkle ledger and checkpoint riders —
	// the op-count parity baseline.
	DisableIntegrity bool
}

// Store is the S3+SimpleDB architecture.
type Store struct {
	cloud  *cloud.Cloud
	layer  *sdbprov.Layer
	faults *sim.FaultPlan

	mu sync.Mutex
	// latest tracks the highest version this client has successfully PUT
	// per object. Partial-batch recovery can reorder flushes across
	// retries; an older pending version retried after a newer one landed
	// must not overwrite the newer data (its provenance item is still
	// written — items are per-version).
	latest map[prov.ObjectID]prov.Version
}

// New builds the store, creating its bucket and domain if needed.
func New(cfg Config) (*Store, error) {
	if cfg.Cloud == nil {
		return nil, errors.New("s3sdb: Config.Cloud is required")
	}
	layer, err := sdbprov.New(sdbprov.Config{
		Cloud:             cfg.Cloud,
		Bucket:            cfg.Bucket,
		Domain:            cfg.Domain,
		Faults:            cfg.Faults,
		MaxReadRetries:    cfg.MaxReadRetries,
		DisableQueryCache: cfg.DisableQueryCache,
		Retry:             cfg.Retry,
		Writer:            cfg.Writer,
		DisableIntegrity:  cfg.DisableIntegrity,
	})
	if err != nil {
		return nil, err
	}
	return &Store{cloud: cfg.Cloud, layer: layer, faults: cfg.Faults,
		latest: make(map[prov.ObjectID]prov.Version)}, nil
}

// Name implements core.Store.
func (s *Store) Name() string { return "s3+sdb" }

// Properties implements core.Store: Table 1 row 2. No atomicity.
func (s *Store) Properties() core.Properties {
	return core.Properties{
		Atomicity:      false,
		Consistency:    true,
		CausalOrdering: true,
		EfficientQuery: true,
	}
}

// Layer exposes the SimpleDB provenance layer (shared with queries/tests).
func (s *Store) Layer() *sdbprov.Layer { return s.layer }

// RetryStats snapshots the store's retry counters (shared with its layer).
func (s *Store) RetryStats() retry.Snapshot { return s.layer.RetryStats() }

// ExportArc implements core.Migrator via the provenance layer.
func (s *Store) ExportArc(ctx context.Context, match func(prov.ObjectID) bool) (*core.ArcExport, error) {
	return s.layer.ExportArc(ctx, match)
}

// ImportArc implements core.Migrator via the provenance layer.
func (s *Store) ImportArc(ctx context.Context, exp *core.ArcExport) error {
	return s.layer.ImportArc(ctx, exp)
}

// RemoveArc implements core.Migrator via the provenance layer.
func (s *Store) RemoveArc(ctx context.Context, match func(prov.ObjectID) bool) (int, error) {
	return s.layer.RemoveArc(ctx, match)
}

// StampToken implements core.Stamped via the provenance layer's stamp.
func (s *Store) StampToken() string { return s.layer.StampToken() }

// PutBatch implements core.Store with the §4.2 protocol, batch-first: the
// whole batch's provenance items go to SimpleDB via grouped
// BatchPutAttributes calls (steps 1–3, ⌈K/25⌉ calls for K small items
// instead of K), then each file version's data is PUT to S3 with its nonce
// (step 4 — S3 has no batch PUT). The atomicity hole widens with the
// batch, exactly as the architecture predicts: a crash between the two
// phases now strands a batch of provenance without data.
//
// Cloud calls retry transient errors with backoff (both phases are
// idempotent under re-apply). A batch that still half-lands fails with a
// typed core.PartialWriteError naming the fully persisted events: transient
// subjects once their provenance landed (they carry no data), file versions
// only once their data PUT landed — provenance-without-data is the orphan
// shape, repaired by the caller's retry or the OrphanScan, never reported
// as durable.
func (s *Store) PutBatch(ctx context.Context, batch []pass.FlushEvent) error {
	return s.layer.TrackWrites(func() error { return s.putBatch(ctx, batch) })
}

func (s *Store) putBatch(ctx context.Context, batch []pass.FlushEvent) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// Invalidate cached query snapshots even when the batch fails partway:
	// the provenance phase's effects may already be visible to queries.
	defer s.layer.InvalidateQueries()
	if err := s.faults.Check("s3sdb/before-put"); err != nil {
		return err
	}

	// Steps 1–2: encode values (>1 KB records go to S3 now) and compute
	// the MD5(data‖nonce) consistency record for every file version.
	// "the nonce is typically the file version" — plus entropy so a
	// re-put of the same version is still distinguishable.
	type dataPut struct {
		ev    pass.FlushEvent
		nonce string
	}
	writes := make([]sdbprov.ItemWrite, 0, len(batch))
	var datas []dataPut
	for _, ev := range batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		var md5hex, nonce string
		if ev.Persistent() {
			nonce = strconv.Itoa(int(ev.Ref.Version)) + "-" + s.cloud.RNG.Hex(4)
			md5hex = sdbprov.ConsistencyMD5(ev.Data, nonce)
			datas = append(datas, dataPut{ev: ev, nonce: nonce})
		}
		// The integrity leaf hashes the ORIGINAL record set — the form a
		// verifier re-derives after decoding pointers and escapes.
		var leaf string
		if s.layer.IntegrityEnabled() {
			leaf = integrity.SubjectHash(ev.Ref, ev.Records)
		}
		encoded, err := s.layer.EncodeValues(ctx, ev.Ref, ev.Records, "s3sdb")
		if err != nil {
			return err
		}
		writes = append(writes, sdbprov.ItemWrite{Subject: ev.Ref, Records: encoded, MD5: md5hex, Leaf: leaf})
	}

	// landed maps provenance-phase progress to fully persisted events:
	// transient subjects are durable once their item lands; files need
	// their data PUT too.
	transientLanded := func(provLanded []prov.Ref) []prov.Ref {
		persistent := make(map[prov.Ref]bool, len(datas))
		for _, d := range datas {
			persistent[d.ev.Ref] = true
		}
		var out []prov.Ref
		for _, ref := range provLanded {
			if !persistent[ref] {
				out = append(out, ref)
			}
		}
		return out
	}

	// Step 3: the batch's provenance (and MD5 records) into SimpleDB.
	if err := s.layer.WriteEncodedBatch(ctx, writes, "s3sdb"); err != nil {
		var pw *core.PartialWriteError
		if errors.As(err, &pw) {
			// Re-scope the landed set from provenance items to full events
			// before the error escapes: a file whose item landed without
			// its data is an orphan, not a durable event. The inner error
			// (item-level refs) must not leak to the flush layer.
			return &core.PartialWriteError{Landed: transientLanded(pw.Landed), Err: pw.Err}
		}
		return err
	}
	allProv := make([]prov.Ref, 0, len(writes))
	for _, w := range writes {
		allProv = append(allProv, w.Subject)
	}

	// The atomicity hole: a crash here leaves provenance without data.
	if err := s.faults.Check("s3sdb/after-prov"); err != nil {
		return core.PartialWrite(transientLanded(allProv), err)
	}

	// Step 4: each data PUT carries its nonce in its metadata. Landed
	// events accumulate transients (durable since step 3) plus each file
	// version whose PUT completes.
	landed := transientLanded(allProv)
	for _, d := range datas {
		if err := ctx.Err(); err != nil {
			return core.PartialWrite(landed, err)
		}
		s.mu.Lock()
		stale := s.latest[d.ev.Ref.Object] > d.ev.Ref.Version
		s.mu.Unlock()
		if stale {
			// A newer version already landed (flush reordering across
			// retries): PUTting this one would regress the object. Its
			// provenance item landed in step 3, and the data key
			// deliberately stays at the newer version — the event is
			// complete.
			landed = append(landed, d.ev.Ref)
			continue
		}
		meta := map[string]string{
			sdbprov.MetaNonce:   d.nonce,
			sdbprov.MetaVersion: strconv.Itoa(int(d.ev.Ref.Version)),
		}
		err := s.layer.Retrier().Do(ctx, "s3sdb/data-put", func() error {
			return s.cloud.S3.Put(s.layer.Bucket(), sdbprov.DataKey(d.ev.Ref.Object), d.ev.Data, meta)
		})
		if err != nil {
			return core.PartialWrite(landed, fmt.Errorf("s3sdb: data put: %w", err))
		}
		s.mu.Lock()
		if d.ev.Ref.Version > s.latest[d.ev.Ref.Object] {
			s.latest[d.ev.Ref.Object] = d.ev.Ref.Version
		}
		s.mu.Unlock()
		landed = append(landed, d.ev.Ref)
		if err := s.faults.Check("s3sdb/after-data"); err != nil {
			return core.PartialWrite(landed, err)
		}
	}
	return nil
}

// Get implements core.Store via the verified-read protocol.
func (s *Store) Get(ctx context.Context, object prov.ObjectID) (*core.Object, error) {
	return s.layer.VerifiedGet(ctx, object)
}

// Provenance implements core.Store: one GetAttributes (plus pointer GETs).
func (s *Store) Provenance(ctx context.Context, ref prov.Ref) ([]prov.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	records, _, ok, err := s.layer.FetchItem(ctx, ref)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", core.ErrNotFound, ref)
	}
	return records, nil
}

// Query implements core.Querier: the SimpleDB layer's native plans —
// predicate pushdown, two-phase tool queries, prefix traversals, snapshot
// fallback — answer every descriptor.
func (s *Store) Query(ctx context.Context, q prov.Query) iter.Seq2[core.Entry, error] {
	return s.layer.Query(ctx, q)
}

// Explain implements core.Querier.
func (s *Store) Explain(q prov.Query) core.QueryPlan {
	p := s.layer.Explain(q)
	p.Arch = s.Name()
	return p
}

// PlanQueryRefs implements core.RefPlanner: the SimpleDB layer's plan
// simulation predicts the reference set q's native plan would return.
func (s *Store) PlanQueryRefs(q prov.Query) ([]prov.Ref, bool) {
	return s.layer.PlanQueryRefs(q)
}

// AllProvenance implements Q.1.
//
// Deprecated: build prov.Q1 and use Query.
func (s *Store) AllProvenance(ctx context.Context) (map[prov.Ref][]prov.Record, error) {
	return s.layer.AllProvenance(ctx)
}

// AllProvenanceSeq streams Q.1.
//
// Deprecated: build prov.Q1 and use Query.
func (s *Store) AllProvenanceSeq(ctx context.Context) iter.Seq2[core.Entry, error] {
	return s.layer.AllProvenanceSeq(ctx)
}

// ProvenanceGraph implements core.GraphQuerier.
func (s *Store) ProvenanceGraph(ctx context.Context) (*prov.Graph, error) {
	return s.layer.ProvenanceGraph(ctx)
}

// OutputsOf implements Q.2.
//
// Deprecated: build prov.QOutputsOf and use Query.
func (s *Store) OutputsOf(ctx context.Context, tool string) ([]prov.Ref, error) {
	return s.layer.OutputsOf(ctx, tool)
}

// DescendantsOfOutputs implements Q.3.
//
// Deprecated: build prov.QDescendantsOfOutputs and use Query.
func (s *Store) DescendantsOfOutputs(ctx context.Context, tool string) ([]prov.Ref, error) {
	return s.layer.DescendantsOfOutputs(ctx, tool)
}

// Dependents runs one indexed prefix query.
//
// Deprecated: build prov.QDependents and use Query.
func (s *Store) Dependents(ctx context.Context, object prov.ObjectID) ([]prov.Ref, error) {
	return s.layer.Dependents(ctx, object)
}

// OrphanScan is the §4.2 recovery path: "On restart, the client could
// recover by scanning SimpleDB for 'orphan provenance' and remove
// provenance of objects that do not exist. However, this is an inelegant
// solution as it involves a scan of the entire SimpleDB domain."
//
// An item is an orphan when it carries a consistency record (so it
// described file data) but S3 holds no data at or beyond that version.
// Candidates are double-checked after waiting out the propagation horizon
// before anything is deleted: a freshly written object served from a stale
// replica must not get its provenance reaped (deleting live provenance is
// strictly worse than tolerating an orphan for one more scan).
// Returns the refs whose provenance was removed.
func (s *Store) OrphanScan(ctx context.Context) (refs []prov.Ref, err error) {
	err = s.layer.TrackWrites(func() error {
		refs, err = s.orphanScan(ctx)
		return err
	})
	return refs, err
}

func (s *Store) orphanScan(ctx context.Context) ([]prov.Ref, error) {
	// Deletions below change query results behind the layer's back.
	defer s.layer.InvalidateQueries()

	// Pass 1: collect candidates without deleting anything.
	var candidates []prov.Ref
	token := ""
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := s.cloud.SDB.Select("select "+sdbprov.AttrMD5+" from "+s.layer.Domain(), token)
		if err != nil {
			return nil, err
		}
		for _, item := range res.Items {
			ref, err := prov.ParseItemName(item.Name)
			if err != nil {
				continue
			}
			orphan, err := s.isOrphan(ref)
			if err != nil {
				return nil, err
			}
			if orphan {
				candidates = append(candidates, ref)
			}
		}
		if res.NextToken == "" {
			break
		}
		token = res.NextToken
	}
	if len(candidates) == 0 {
		return nil, nil
	}

	// Pass 2: wait for the region to converge, re-verify, then delete only
	// confirmed orphans.
	s.layer.ConsistencyWait()
	var orphans []prov.Ref
	for _, ref := range candidates {
		if err := ctx.Err(); err != nil {
			return orphans, err
		}
		orphan, err := s.isOrphan(ref)
		if err != nil {
			return orphans, err
		}
		if !orphan {
			continue
		}
		item := prov.EncodeItemName(ref)
		if err := s.layer.Retrier().Do(ctx, "s3sdb/orphan-delete", func() error {
			return s.cloud.SDB.DeleteAttributes(s.layer.Domain(), item, nil)
		}); err != nil {
			return orphans, err
		}
		orphans = append(orphans, ref)
	}
	if len(orphans) > 0 {
		// The deletions changed the committed record set: retire the
		// orphans' leaves and re-persist the checkpoint so the verifier
		// sees a legitimate removal, not tampering.
		items := make([]string, len(orphans))
		for i, ref := range orphans {
			items[i] = prov.EncodeItemName(ref)
		}
		if err := s.layer.DropFromLedger(ctx, items); err != nil {
			return orphans, err
		}
	}
	return orphans, nil
}

// Audit implements integrity.Auditor via the shared provenance layer.
func (s *Store) Audit(ctx context.Context) (*integrity.Audit, error) {
	return s.layer.Audit(ctx)
}

// isOrphan checks whether a persistent item's data is missing or older than
// the provenance claims.
func (s *Store) isOrphan(ref prov.Ref) (bool, error) {
	info, err := s.cloud.S3.Head(s.layer.Bucket(), sdbprov.DataKey(ref.Object))
	if err != nil {
		if errors.Is(err, s3.ErrNoSuchKey) {
			return true, nil
		}
		return false, err
	}
	ver, err := strconv.Atoi(info.Metadata[sdbprov.MetaVersion])
	if err != nil {
		return true, nil // data without version metadata cannot back an item
	}
	return prov.Version(ver) < ref.Version, nil
}

var (
	_ core.Store        = (*Store)(nil)
	_ core.Querier      = (*Store)(nil)
	_ core.GraphQuerier = (*Store)(nil)
)
