// Package s3sdb implements the paper's second architecture (§4.2,
// Figure 2): data in S3, provenance in SimpleDB. SimpleDB's automatic
// indexing buys efficient queries; what the architecture gives up is
// atomicity — "a client crashes after storing the provenance of object on
// SimpleDB but before storing the object on S3. Clearly atomicity is
// violated here as provenance is recorded but not the data."
//
// The write protocol follows §4.2 exactly:
//
//  1. convert each provenance record into attribute-value pairs; values
//     above 1 KB go to S3 objects with pointers left behind;
//  2. add the MD5(data‖nonce) consistency record;
//  3. store the item with (possibly several) PutAttributes calls;
//  4. PUT the data to S3 with the nonce in its metadata.
//
// Consistency survives eventual consistency because reads verify the MD5
// and reissue until data and provenance agree (sdbprov.VerifiedGet).
// Recovery from the atomicity hole is the inelegant full-domain orphan scan
// the paper describes — implemented here as OrphanScan so the cost is
// measurable.
package s3sdb

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"strconv"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/core"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// Config parameterizes the store.
type Config struct {
	// Cloud supplies S3 and SimpleDB. Required.
	Cloud *cloud.Cloud
	// Bucket and Domain follow sdbprov defaults when empty.
	Bucket string
	Domain string
	// Faults optionally injects client crashes at protocol points.
	Faults *sim.FaultPlan
	// MaxReadRetries bounds the consistency retry loop.
	MaxReadRetries int
	// DisableQueryCache turns off the sdbprov layer's generation-stamped
	// query cache, restoring the paper's one-query-run-per-call costs.
	DisableQueryCache bool
}

// Store is the S3+SimpleDB architecture.
type Store struct {
	cloud  *cloud.Cloud
	layer  *sdbprov.Layer
	faults *sim.FaultPlan
}

// New builds the store, creating its bucket and domain if needed.
func New(cfg Config) (*Store, error) {
	if cfg.Cloud == nil {
		return nil, errors.New("s3sdb: Config.Cloud is required")
	}
	layer, err := sdbprov.New(sdbprov.Config{
		Cloud:             cfg.Cloud,
		Bucket:            cfg.Bucket,
		Domain:            cfg.Domain,
		Faults:            cfg.Faults,
		MaxReadRetries:    cfg.MaxReadRetries,
		DisableQueryCache: cfg.DisableQueryCache,
	})
	if err != nil {
		return nil, err
	}
	return &Store{cloud: cfg.Cloud, layer: layer, faults: cfg.Faults}, nil
}

// Name implements core.Store.
func (s *Store) Name() string { return "s3+sdb" }

// Properties implements core.Store: Table 1 row 2. No atomicity.
func (s *Store) Properties() core.Properties {
	return core.Properties{
		Atomicity:      false,
		Consistency:    true,
		CausalOrdering: true,
		EfficientQuery: true,
	}
}

// Layer exposes the SimpleDB provenance layer (shared with queries/tests).
func (s *Store) Layer() *sdbprov.Layer { return s.layer }

// PutBatch implements core.Store with the §4.2 protocol, batch-first: the
// whole batch's provenance items go to SimpleDB via grouped
// BatchPutAttributes calls (steps 1–3, ⌈K/25⌉ calls for K small items
// instead of K), then each file version's data is PUT to S3 with its nonce
// (step 4 — S3 has no batch PUT). The atomicity hole widens with the
// batch, exactly as the architecture predicts: a crash between the two
// phases now strands a batch of provenance without data.
func (s *Store) PutBatch(ctx context.Context, batch []pass.FlushEvent) error {
	return s.layer.TrackWrites(func() error { return s.putBatch(ctx, batch) })
}

func (s *Store) putBatch(ctx context.Context, batch []pass.FlushEvent) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// Invalidate cached query snapshots even when the batch fails partway:
	// the provenance phase's effects may already be visible to queries.
	defer s.layer.InvalidateQueries()
	if err := s.faults.Check("s3sdb/before-put"); err != nil {
		return err
	}

	// Steps 1–2: encode values (>1 KB records go to S3 now) and compute
	// the MD5(data‖nonce) consistency record for every file version.
	// "the nonce is typically the file version" — plus entropy so a
	// re-put of the same version is still distinguishable.
	type dataPut struct {
		ev    pass.FlushEvent
		nonce string
	}
	writes := make([]sdbprov.ItemWrite, 0, len(batch))
	var datas []dataPut
	for _, ev := range batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		var md5hex, nonce string
		if ev.Persistent() {
			nonce = strconv.Itoa(int(ev.Ref.Version)) + "-" + s.cloud.RNG.Hex(4)
			md5hex = sdbprov.ConsistencyMD5(ev.Data, nonce)
			datas = append(datas, dataPut{ev: ev, nonce: nonce})
		}
		encoded, err := s.layer.EncodeValues(ev.Ref, ev.Records, "s3sdb")
		if err != nil {
			return err
		}
		writes = append(writes, sdbprov.ItemWrite{Subject: ev.Ref, Records: encoded, MD5: md5hex})
	}

	// Step 3: the batch's provenance (and MD5 records) into SimpleDB.
	if err := s.layer.WriteEncodedBatch(ctx, writes, "s3sdb"); err != nil {
		return err
	}

	// The atomicity hole: a crash here leaves provenance without data.
	if err := s.faults.Check("s3sdb/after-prov"); err != nil {
		return err
	}

	// Step 4: each data PUT carries its nonce in its metadata.
	for _, d := range datas {
		if err := ctx.Err(); err != nil {
			return err
		}
		meta := map[string]string{
			sdbprov.MetaNonce:   d.nonce,
			sdbprov.MetaVersion: strconv.Itoa(int(d.ev.Ref.Version)),
		}
		if err := s.cloud.S3.Put(s.layer.Bucket(), sdbprov.DataKey(d.ev.Ref.Object), d.ev.Data, meta); err != nil {
			return fmt.Errorf("s3sdb: data put: %w", err)
		}
		if err := s.faults.Check("s3sdb/after-data"); err != nil {
			return err
		}
	}
	return nil
}

// Get implements core.Store via the verified-read protocol.
func (s *Store) Get(ctx context.Context, object prov.ObjectID) (*core.Object, error) {
	return s.layer.VerifiedGet(ctx, object)
}

// Provenance implements core.Store: one GetAttributes (plus pointer GETs).
func (s *Store) Provenance(ctx context.Context, ref prov.Ref) ([]prov.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	records, _, ok, err := s.layer.FetchItem(ref)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", core.ErrNotFound, ref)
	}
	return records, nil
}

// Query implements core.Querier: the SimpleDB layer's native plans —
// predicate pushdown, two-phase tool queries, prefix traversals, snapshot
// fallback — answer every descriptor.
func (s *Store) Query(ctx context.Context, q prov.Query) iter.Seq2[core.Entry, error] {
	return s.layer.Query(ctx, q)
}

// Explain implements core.Querier.
func (s *Store) Explain(q prov.Query) core.QueryPlan {
	p := s.layer.Explain(q)
	p.Arch = s.Name()
	return p
}

// AllProvenance implements Q.1.
//
// Deprecated: build prov.Q1 and use Query.
func (s *Store) AllProvenance(ctx context.Context) (map[prov.Ref][]prov.Record, error) {
	return s.layer.AllProvenance(ctx)
}

// AllProvenanceSeq streams Q.1.
//
// Deprecated: build prov.Q1 and use Query.
func (s *Store) AllProvenanceSeq(ctx context.Context) iter.Seq2[core.Entry, error] {
	return s.layer.AllProvenanceSeq(ctx)
}

// ProvenanceGraph implements core.GraphQuerier.
func (s *Store) ProvenanceGraph(ctx context.Context) (*prov.Graph, error) {
	return s.layer.ProvenanceGraph(ctx)
}

// OutputsOf implements Q.2.
//
// Deprecated: build prov.QOutputsOf and use Query.
func (s *Store) OutputsOf(ctx context.Context, tool string) ([]prov.Ref, error) {
	return s.layer.OutputsOf(ctx, tool)
}

// DescendantsOfOutputs implements Q.3.
//
// Deprecated: build prov.QDescendantsOfOutputs and use Query.
func (s *Store) DescendantsOfOutputs(ctx context.Context, tool string) ([]prov.Ref, error) {
	return s.layer.DescendantsOfOutputs(ctx, tool)
}

// Dependents runs one indexed prefix query.
//
// Deprecated: build prov.QDependents and use Query.
func (s *Store) Dependents(ctx context.Context, object prov.ObjectID) ([]prov.Ref, error) {
	return s.layer.Dependents(ctx, object)
}

// OrphanScan is the §4.2 recovery path: "On restart, the client could
// recover by scanning SimpleDB for 'orphan provenance' and remove
// provenance of objects that do not exist. However, this is an inelegant
// solution as it involves a scan of the entire SimpleDB domain."
//
// An item is an orphan when it carries a consistency record (so it
// described file data) but S3 holds no data at or beyond that version.
// Returns the refs whose provenance was removed.
func (s *Store) OrphanScan(ctx context.Context) (refs []prov.Ref, err error) {
	err = s.layer.TrackWrites(func() error {
		refs, err = s.orphanScan(ctx)
		return err
	})
	return refs, err
}

func (s *Store) orphanScan(ctx context.Context) ([]prov.Ref, error) {
	// Deletions below change query results behind the layer's back.
	defer s.layer.InvalidateQueries()
	var orphans []prov.Ref
	token := ""
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := s.cloud.SDB.Select("select "+sdbprov.AttrMD5+" from "+s.layer.Domain(), token)
		if err != nil {
			return nil, err
		}
		for _, item := range res.Items {
			ref, err := prov.ParseItemName(item.Name)
			if err != nil {
				continue
			}
			orphan, err := s.isOrphan(ref)
			if err != nil {
				return nil, err
			}
			if !orphan {
				continue
			}
			if err := s.cloud.SDB.DeleteAttributes(s.layer.Domain(), item.Name, nil); err != nil {
				return nil, err
			}
			orphans = append(orphans, ref)
		}
		if res.NextToken == "" {
			return orphans, nil
		}
		token = res.NextToken
	}
}

// isOrphan checks whether a persistent item's data is missing or older than
// the provenance claims.
func (s *Store) isOrphan(ref prov.Ref) (bool, error) {
	info, err := s.cloud.S3.Head(s.layer.Bucket(), sdbprov.DataKey(ref.Object))
	if err != nil {
		if errors.Is(err, s3.ErrNoSuchKey) {
			return true, nil
		}
		return false, err
	}
	ver, err := strconv.Atoi(info.Metadata[sdbprov.MetaVersion])
	if err != nil {
		return true, nil // data without version metadata cannot back an item
	}
	return prov.Version(ver) < ref.Version, nil
}

var (
	_ core.Store        = (*Store)(nil)
	_ core.Querier      = (*Store)(nil)
	_ core.GraphQuerier = (*Store)(nil)
)
