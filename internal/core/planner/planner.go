// Package planner holds the client-side statistics catalogs behind
// core.Querier.Explain: a mirror of what each store has written, detailed
// enough to predict — without any cloud traffic — exactly how many
// operations a query plan will meter. This is the Table 3 cost model turned
// into a live planner: instead of three fixed formulas, each store
// simulates its chosen plan (scan, two-phase indexed query, prefix
// traversal) against the catalog.
//
// The catalog observes the store's own writes, so predictions are exact for
// a single-writer repository (the paper's evaluation setup) and degrade to
// estimates when other clients of a shared region write behind this
// client's back — Explain reports which via QueryPlan.Exact.
package planner

import (
	"sort"
	"sync"

	"passcloud/internal/core"
	"passcloud/internal/prov"
)

// ItemStats is one SimpleDB item's decode cost, as the scan planner needs
// it: fetching the item costs one GetAttributes, plus one S3 GET per
// pointer-valued record and one for the spill object when present.
type ItemStats struct {
	PtrGets int
	Spill   bool
}

// Gets is the item's S3 GETs on decode.
func (s ItemStats) Gets() int64 {
	n := int64(s.PtrGets)
	if s.Spill {
		n++
	}
	return n
}

// SDBCatalog mirrors a SimpleDB provenance domain: stored-form records per
// item, with the value and ancestry indexes the backend's automatic
// indexing would build. Stored-form matters — the planner must predict what
// the backend's index will match, which is the encoded value, not the
// decoded one. Safe for concurrent use.
type SDBCatalog struct {
	mu      sync.Mutex
	items   map[prov.Ref][]prov.Record
	stats   map[prov.Ref]ItemStats
	byAttr  map[string]map[string]map[prov.Ref]bool // attr -> stored value -> subjects
	byInput map[prov.Ref]map[prov.Ref]bool          // input ref -> subjects listing it
}

// NewSDBCatalog returns an empty catalog.
func NewSDBCatalog() *SDBCatalog {
	return &SDBCatalog{
		items:   make(map[prov.Ref][]prov.Record),
		stats:   make(map[prov.Ref]ItemStats),
		byAttr:  make(map[string]map[string]map[prov.Ref]bool),
		byInput: make(map[prov.Ref]map[prov.Ref]bool),
	}
}

// Observe records one item write: the subject's inline (indexed) records
// and its spilled remainder. Only inline records enter the value indexes —
// SimpleDB cannot index what lives in the S3 spill object, and the planner
// must predict what the backend's index will actually match. Decode costs
// count both. Rewrites of the same subject replace the previous observation
// (provenance item replays are idempotent).
func (c *SDBCatalog) Observe(subject prov.Ref, inline, spill []prov.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.items[subject]; ok {
		c.unindex(subject, old)
	}
	records := append([]prov.Record(nil), inline...)
	c.items[subject] = records
	st := ItemStats{Spill: len(spill) > 0}
	countPtr := func(r prov.Record) {
		if r.Value.Kind == prov.KindString {
			if _, _, isPtr := core.DecodeValue(r.Value.Str); isPtr {
				st.PtrGets++
			}
		}
	}
	for _, r := range records {
		c.index(subject, r)
		countPtr(r)
	}
	for _, r := range spill {
		countPtr(r)
	}
	c.stats[subject] = st
}

func (c *SDBCatalog) index(subject prov.Ref, r prov.Record) {
	value := r.Value.String()
	byVal := c.byAttr[r.Attr]
	if byVal == nil {
		byVal = make(map[string]map[prov.Ref]bool)
		c.byAttr[r.Attr] = byVal
	}
	subjects := byVal[value]
	if subjects == nil {
		subjects = make(map[prov.Ref]bool)
		byVal[value] = subjects
	}
	subjects[subject] = true
	if r.Attr == prov.AttrInput && r.Value.Kind == prov.KindRef {
		deps := c.byInput[r.Value.Ref]
		if deps == nil {
			deps = make(map[prov.Ref]bool)
			c.byInput[r.Value.Ref] = deps
		}
		deps[subject] = true
	}
}

func (c *SDBCatalog) unindex(subject prov.Ref, records []prov.Record) {
	for _, r := range records {
		if byVal := c.byAttr[r.Attr]; byVal != nil {
			delete(byVal[r.Value.String()], subject)
		}
		if r.Attr == prov.AttrInput && r.Value.Kind == prov.KindRef {
			delete(c.byInput[r.Value.Ref], subject)
		}
	}
}

// Forget drops one item's observation — the mirror of a deleted item
// (orphan cleanup, arc migration), so scan and index predictions stop
// counting it.
func (c *SDBCatalog) Forget(subject prov.Ref) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.items[subject]; ok {
		c.unindex(subject, old)
	}
	delete(c.items, subject)
	delete(c.stats, subject)
}

// Items is the number of mirrored items — the scan's GetAttributes count.
func (c *SDBCatalog) Items() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// DecodeGets is the S3 GETs a full-repository decode issues.
func (c *SDBCatalog) DecodeGets() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, st := range c.stats {
		n += st.Gets()
	}
	return n
}

// ItemGets is the S3 GETs decoding the given items issues.
func (c *SDBCatalog) ItemGets(refs []prov.Ref) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, r := range refs {
		n += c.stats[r].Gets()
	}
	return n
}

// AttrGets is the S3 GETs decoding the named attributes of the given items
// issues: one per pointer-encoded stored value among each item's inline
// records whose attribute is requested. This is the decode cost of
// attributes riding a QueryWithAttributes response.
func (c *SDBCatalog) AttrGets(refs []prov.Ref, attrNames []string) int64 {
	if len(attrNames) == 0 {
		return 0
	}
	want := make(map[string]bool, len(attrNames))
	for _, n := range attrNames {
		want[n] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, ref := range refs {
		for _, r := range c.items[ref] {
			if !want[r.Attr] || r.Value.Kind != prov.KindString {
				continue
			}
			if _, _, isPtr := core.DecodeValue(r.Value.Str); isPtr {
				n++
			}
		}
	}
	return n
}

// MatchAttr returns the subjects the backend's index would return for
// attr = storedValue.
func (c *SDBCatalog) MatchAttr(attr, storedValue string) []prov.Ref {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []prov.Ref
	for subject := range c.byAttr[attr][storedValue] {
		out = append(out, subject)
	}
	sortByItemName(out)
	return out
}

// MatchAttrs intersects several attr = storedValue predicates, mirroring a
// pushdown expression joined with `intersection`.
func (c *SDBCatalog) MatchAttrs(filters []prov.AttrFilter) []prov.Ref {
	if len(filters) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	acc := make(map[prov.Ref]bool)
	for subject := range c.byAttr[filters[0].Attr][filters[0].Value] {
		acc[subject] = true
	}
	for _, f := range filters[1:] {
		next := c.byAttr[f.Attr][f.Value]
		for subject := range acc {
			if !next[subject] {
				delete(acc, subject)
			}
		}
	}
	out := make([]prov.Ref, 0, len(acc))
	for subject := range acc {
		out = append(out, subject)
	}
	sortByItemName(out)
	return out
}

// Dependents returns the subjects listing any of refs among their inputs —
// one simulated chunk of the two-phase query.
func (c *SDBCatalog) Dependents(refs []prov.Ref) []prov.Ref {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[prov.Ref]bool)
	var out []prov.Ref
	for _, r := range refs {
		for subject := range c.byInput[r] {
			seen[subject] = true
		}
	}
	for subject := range seen {
		out = append(out, subject)
	}
	sortByItemName(out)
	return out
}

// DependentsOfPrefix returns the subjects with an input whose stored ref
// form starts with prefix — the simulated starts-with query.
func (c *SDBCatalog) DependentsOfPrefix(prefix string) []prov.Ref {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[prov.Ref]bool)
	var out []prov.Ref
	for in, deps := range c.byInput {
		if !hasPrefix(in.String(), prefix) {
			continue
		}
		for subject := range deps {
			seen[subject] = true
		}
	}
	for subject := range seen {
		out = append(out, subject)
	}
	sortByItemName(out)
	return out
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// sortByItemName mirrors the backend's result order: queries return item
// names lexicographically sorted, which is not ref order (version 10 sorts
// before version 2 as a string). Chunking simulations must follow it so
// page-boundary predictions land exactly where the real run's do.
func sortByItemName(refs []prov.Ref) {
	sort.Slice(refs, func(i, j int) bool {
		return prov.EncodeItemName(refs[i]) < prov.EncodeItemName(refs[j])
	})
}

// Records returns the subject's inline stored-form records (read-only).
func (c *SDBCatalog) Records(ref prov.Ref) []prov.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.items[ref]
}

// AllRefs returns every mirrored item's ref in backend (item-name) order.
func (c *SDBCatalog) AllRefs() []prov.Ref {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]prov.Ref, 0, len(c.items))
	for subject := range c.items {
		out = append(out, subject)
	}
	sortByItemName(out)
	return out
}

// S3Catalog mirrors the S3-only architecture's scan costs: the data objects
// a repository scan will LIST and HEAD, and the extra GETs decoding each
// object's metadata triggers (overflow values and the spill bundle). Safe
// for concurrent use.
type S3Catalog struct {
	mu      sync.Mutex
	objects map[string]int64 // data key -> decode GETs
}

// NewS3Catalog returns an empty catalog.
func NewS3Catalog() *S3Catalog {
	return &S3Catalog{objects: make(map[string]int64)}
}

// Observe records one data PUT: the object's key and how many GETs decoding
// its metadata costs. Same-key rewrites replace.
func (c *S3Catalog) Observe(key string, decodeGets int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.objects[key] = decodeGets
}

// Forget drops one object's observation — the mirror of a deleted
// carrier (arc migration), so scan predictions stop counting it.
func (c *S3Catalog) Forget(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.objects, key)
}

// ScanCost returns the scan's object count and total decode GETs.
func (c *S3Catalog) ScanCost() (objects int, gets int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, g := range c.objects {
		gets += g
	}
	return len(c.objects), gets
}
