package planner

import (
	"reflect"
	"testing"

	"passcloud/internal/core"
	"passcloud/internal/prov"
)

func pref(obj string, v int) prov.Ref {
	return prov.Ref{Object: prov.ObjectID(obj), Version: prov.Version(v)}
}

func TestSDBCatalogObserveReplace(t *testing.T) {
	c := NewSDBCatalog()
	s := pref("/f", 0)
	c.Observe(s, []prov.Record{
		prov.NewString(s, prov.AttrName, "blast"),
		prov.NewString(s, prov.AttrEnv, core.PointerValue("prov/x/0")),
	}, nil)
	if got := c.MatchAttr(prov.AttrName, "blast"); len(got) != 1 {
		t.Fatalf("MatchAttr = %v", got)
	}
	if c.ItemGets([]prov.Ref{s}) != 1 {
		t.Fatal("pointer value must cost one decode GET")
	}

	// A rewrite replaces: the old index entries disappear.
	c.Observe(s, []prov.Record{prov.NewString(s, prov.AttrName, "align")}, nil)
	if got := c.MatchAttr(prov.AttrName, "blast"); len(got) != 0 {
		t.Fatalf("stale index entry survived: %v", got)
	}
	if c.Items() != 1 || c.ItemGets([]prov.Ref{s}) != 0 {
		t.Fatalf("replace semantics broken: items=%d gets=%d", c.Items(), c.ItemGets([]prov.Ref{s}))
	}
}

func TestSDBCatalogSpillNotIndexed(t *testing.T) {
	c := NewSDBCatalog()
	s := pref("/f", 0)
	inline := []prov.Record{prov.NewString(s, prov.AttrType, prov.TypeFile)}
	spill := []prov.Record{prov.NewString(s, prov.AttrName, "hidden")}
	c.Observe(s, inline, spill)
	if got := c.MatchAttr(prov.AttrName, "hidden"); len(got) != 0 {
		t.Fatalf("spilled record entered the index: %v", got)
	}
	if c.ItemGets([]prov.Ref{s}) != 1 {
		t.Fatal("spill object must cost one decode GET")
	}
}

func TestSDBCatalogDependentsAndOrder(t *testing.T) {
	c := NewSDBCatalog()
	parent := pref("/p", 0)
	// Versions 2 and 10: item-name order is lexicographic, so _10 sorts
	// before _2 — the order the real backend returns.
	d2, d10 := pref("/d", 2), pref("/d", 10)
	c.Observe(d2, []prov.Record{prov.NewInput(d2, parent)}, nil)
	c.Observe(d10, []prov.Record{prov.NewInput(d10, parent)}, nil)

	got := c.Dependents([]prov.Ref{parent})
	want := []prov.Ref{d10, d2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Dependents order = %v, want item-name order %v", got, want)
	}
	if got := c.DependentsOfPrefix("/p:"); !reflect.DeepEqual(got, want) {
		t.Fatalf("DependentsOfPrefix = %v", got)
	}
}

func TestS3CatalogScanCost(t *testing.T) {
	c := NewS3Catalog()
	c.Observe("data/a", 2)
	c.Observe("data/b", 0)
	c.Observe("data/a", 1) // replace
	objects, gets := c.ScanCost()
	if objects != 2 || gets != 1 {
		t.Fatalf("ScanCost = %d objects, %d gets", objects, gets)
	}
}
