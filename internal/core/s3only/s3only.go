// Package s3only implements the paper's first architecture (§4.1, Figure 1):
// PASS with S3 as the only storage substrate. Each file maps to an S3
// object; its provenance travels as S3 user metadata in the very same PUT,
// which is what gives this architecture read correctness for free —
// "either both provenance and data are stored or they are both not stored".
//
// Two complications the paper describes are implemented faithfully:
//
//   - records whose values exceed 1 KB are stored as separate S3 objects
//     and referenced by pointer from the metadata (one extra PUT each);
//   - metadata beyond S3's 2 KB limit spills into a bundle object, which
//     "introduces read correctness challenges and only worsens the query
//     problem" — the bundle is written before the data PUT so a crash
//     leaves garbage, never data without provenance.
//
// Transient objects (processes, pipes) have no S3 object of their own:
// their records ride along in the metadata of the descendant file PUT that
// triggered their flush. This matches the paper's op accounting, where the
// only extra PUTs are the >1 KB overflow records.
//
// Querying is the architecture's weakness: "if we do not know the exact
// object whose provenance we seek, then we might need to iterate over the
// provenance of every object in the repository". The Querier implementation
// does exactly that — LIST plus one HEAD per object plus one GET per
// overflow object — so the metered cost exhibits the paper's Table 3 row.
// Two mitigations soften the cost without changing it: the per-page HEADs
// run with bounded concurrency (ScanConcurrency), cutting scan latency by
// the concurrency factor, and the scanned graph is kept in a
// generation-stamped snapshot cache (internal/core/qcache) so repeated
// queries on an unchanged repository cost zero cloud ops. Config.
// DisableQueryCache restores the paper's every-query-scans behaviour.
package s3only

import (
	"context"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"iter"
	"maps"
	"sort"
	"strconv"
	"strings"
	"sync"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/awserr"
	"passcloud/internal/cloud/retry"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/core/planner"
	"passcloud/internal/core/qcache"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// Reserved metadata keys (outside the provenance encoding).
const (
	metaVersion  = "x-ver"  // version of the stored object
	metaOverflow = "x-over" // pointer to the spill bundle object
)

// Key layout within the bucket.
const (
	dataPrefix = "data"
	provPrefix = "prov"
)

// budget is the metadata space left for provenance after reserved keys and
// the integrity checkpoint rider. The rider's worst-case size is reserved
// unconditionally — with integrity disabled too — so the spill boundaries
// (and with them the op counts) are bit-identical between an integrity run
// and its parity baseline.
const budget = s3.MaxMetadataSize - 64 - riderReserve

// riderReserve holds space for the x-root metadata key and its checkpoint
// token ("v1|writer|seq|count|32-hex-root").
const riderReserve = 96

// Config parameterizes the store.
type Config struct {
	// Cloud supplies the S3 service. Required.
	Cloud *cloud.Cloud
	// Bucket is created if missing. Defaults to "pass".
	Bucket string
	// Faults optionally injects client crashes at protocol points.
	Faults *sim.FaultPlan
	// PutConcurrency bounds the number of in-flight data PUTs when a
	// batch carries several independent file versions (default 4). S3 has
	// no batch PUT, so overlap is the only amortization available to this
	// architecture; versions of the same object always stay sequential so
	// last-writer-wins resolves in causal order.
	PutConcurrency int
	// ScanConcurrency bounds the in-flight HEADs per LIST page during
	// repository scans (default: PutConcurrency). The scan stays one LIST
	// page at a time; only the per-object HEADs within a page overlap.
	ScanConcurrency int
	// DisableQueryCache turns off the snapshot cache, restoring the
	// paper's behaviour of one full scan per query (Table 3's S3 row).
	DisableQueryCache bool
	// Retry bounds the transient-error backoff around every cloud call the
	// store issues. The zero value uses the shared defaults.
	Retry retry.Policy
	// Writer identifies this client in integrity checkpoints (default "w").
	Writer string
	// DisableIntegrity turns off the Merkle ledger and checkpoint riders —
	// the op-count parity baseline.
	DisableIntegrity bool
}

// Store is the S3-only architecture.
type Store struct {
	cloud       *cloud.Cloud
	bucket      string
	faults      *sim.FaultPlan
	concurrency int
	scanConc    int

	// gen counts writes; cache (nil when disabled) holds the scanned
	// provenance graph while gen is unchanged.
	gen   qcache.Generation
	cache *qcache.Cache
	// stamp samples the repository generation independently of the cache;
	// pagination cursors bind to it.
	stamp qcache.StampFunc
	// pins retains paginated queries’ evaluated result sets.
	pins core.Pins
	// catalog mirrors this client's data PUTs for Explain's predictions;
	// tracker tells the planner whether anything else wrote to the region.
	catalog *planner.S3Catalog
	tracker *qcache.WriteTracker
	// retrier backs off and retries transient cloud errors; its meters
	// feed the cost harness's retry-overhead report.
	retrier *retry.Retrier
	// ledger rolls the Merkle commitment over carrier PUTs (nil when
	// integrity is disabled), keyed by data object key: this architecture
	// overwrites an object's metadata in place, so a slot's leaves are
	// replaced whenever its key is re-PUT.
	ledger *integrity.Ledger

	mu sync.Mutex
	// foreign buffers transient ancestors' records until the descendant
	// file PUT they will ride on. Client-side state: a crash loses it,
	// exactly like the paper's client-side caches.
	foreign []prov.Record
	// pnodeSeq numbers the marker objects Sync writes for trailing
	// transient provenance.
	pnodeSeq int
	// latest tracks the highest version this client has successfully PUT
	// per data key. Partial-batch recovery can reorder flushes across
	// retries (a new version lands while an older one stays pending); an
	// older version must then never overwrite the newer object.
	latest map[string]prov.Version
}

// New builds the store, creating its bucket if needed.
func New(cfg Config) (*Store, error) {
	if cfg.Cloud == nil {
		return nil, errors.New("s3only: Config.Cloud is required")
	}
	if cfg.Bucket == "" {
		cfg.Bucket = "pass"
	}
	if cfg.PutConcurrency <= 0 {
		cfg.PutConcurrency = 4
	}
	if cfg.ScanConcurrency <= 0 {
		cfg.ScanConcurrency = cfg.PutConcurrency
	}
	s := &Store{cloud: cfg.Cloud, bucket: cfg.Bucket, faults: cfg.Faults,
		concurrency: cfg.PutConcurrency, scanConc: cfg.ScanConcurrency,
		catalog: planner.NewS3Catalog(), tracker: qcache.NewWriteTracker(cfg.Cloud),
		retrier: retry.New(cfg.Retry, cfg.Cloud.Clock, cfg.Cloud.RNG),
		latest:  make(map[string]prov.Version)}
	if !cfg.DisableIntegrity {
		s.ledger = integrity.NewLedger(cfg.Writer)
	}
	// Resource creation meters as a mutation (CreateBucket is an S3 PUT);
	// track it so a solo client's plans stay exact.
	err := s.tracker.Track(func() error {
		//passvet:allow retrywrap -- one-shot namespace setup at construction: no caller context exists yet, and a failure surfaces directly instead of being retried behind the builder's back
		if err := cfg.Cloud.S3.CreateBucket(cfg.Bucket); err != nil && !errors.Is(err, s3.ErrBucketAlreadyExists) {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.stamp = qcache.CloudStamp(&s.gen, cfg.Cloud)
	if !cfg.DisableQueryCache {
		s.cache = qcache.New(s.stamp)
	}
	return s, nil
}

// Name implements core.Store.
func (s *Store) Name() string { return "s3" }

// Properties implements core.Store: Table 1 row 1.
func (s *Store) Properties() core.Properties {
	return core.Properties{
		Atomicity:      true,
		Consistency:    true,
		CausalOrdering: true,
		EfficientQuery: false,
	}
}

func dataKey(object prov.ObjectID) string { return dataPrefix + string(object) }

func overflowKey(subject prov.Ref, n int) string {
	return fmt.Sprintf("%s/%s/%d", provPrefix, prov.EncodeItemName(subject), n)
}

func bundleKey(subject prov.Ref) string {
	return fmt.Sprintf("%s/%s/bundle", provPrefix, prov.EncodeItemName(subject))
}

// dataPut is one assembled file PUT awaiting execution.
type dataPut struct {
	key  string
	data []byte
	meta map[string]string
	// gets is what decoding this object's metadata costs a scan (overflow
	// pointer and bundle GETs) — recorded into the planner catalog once
	// the PUT lands.
	gets int64
	// ref is the file version this PUT persists.
	ref prov.Ref
	// riders are the transient subjects whose buffered records travel in
	// this PUT's metadata: when the PUT lands, their provenance landed too.
	riders []prov.Ref
	// carriesSaved marks the PUT that drained pre-batch leftovers of the
	// foreign buffer; if it lands, a failed batch must not restore them.
	carriesSaved bool
}

// batchResult accumulates what a (possibly failing) putBatch achieved.
type batchResult struct {
	mu sync.Mutex
	// landed lists fully persisted refs: file versions whose PUT completed
	// plus the transient riders those PUTs carried.
	landed []prov.Ref
	// savedLanded reports that the pre-batch foreign leftovers persisted.
	savedLanded bool
}

func (r *batchResult) record(p dataPut) {
	r.mu.Lock()
	r.landed = append(r.landed, p.ref)
	r.landed = append(r.landed, p.riders...)
	if p.carriesSaved {
		r.savedLanded = true
	}
	r.mu.Unlock()
}

func (r *batchResult) recordRef(ref prov.Ref) {
	r.mu.Lock()
	r.landed = append(r.landed, ref)
	r.mu.Unlock()
}

// PutBatch implements core.Store. Protocol (§4.1), batch-first: transient
// events buffer their records to ride the next file PUT of the batch (its
// triggering descendant, by PASS flush order); each file event's metadata
// is assembled sequentially (overflow and bundle PUTs happen here, before
// any data PUT); then the batch's independent data PUTs — each carrying
// its object and provenance atomically — execute concurrently under the
// PutConcurrency bound.
//
// The foreign buffer is transactional across the batch: on any error the
// buffer is restored so that pre-batch leftovers that did not persist are
// carried again, while leftovers that rode a PUT which landed are not —
// a replayed batch neither loses trailing transient provenance nor
// duplicates it.
//
// A failing batch in which some PUTs completed returns a typed
// core.PartialWriteError naming the fully persisted events (file versions
// and their transient riders); the caller retries only the remainder.
func (s *Store) PutBatch(ctx context.Context, batch []pass.FlushEvent) error {
	// Invalidate cached query snapshots even when the batch fails: partial
	// effects (overflow or bundle PUTs) may already be visible to a scan.
	defer s.gen.Bump()
	s.mu.Lock()
	saved := append([]prov.Record(nil), s.foreign...)
	s.mu.Unlock()
	res := &batchResult{}
	if err := s.tracker.Track(func() error { return s.putBatch(ctx, batch, len(saved) > 0, res) }); err != nil {
		s.mu.Lock()
		if res.savedLanded {
			// The leftovers persisted with a landed PUT; restoring them
			// would duplicate their records on the next flush. This-batch
			// records are dropped either way: the caller re-sends their
			// events (minus the landed ones).
			s.foreign = nil
		} else {
			s.foreign = saved
		}
		s.mu.Unlock()
		return core.PartialWrite(res.landed, err)
	}
	return nil
}

func (s *Store) putBatch(ctx context.Context, batch []pass.FlushEvent, savedPresent bool, res *batchResult) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var puts []dataPut
	for _, ev := range batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !ev.Persistent() {
			// Transient object: buffer; its records ride the batch's next
			// file PUT.
			s.mu.Lock()
			s.foreign = append(s.foreign, ev.Records...)
			s.mu.Unlock()
			continue
		}

		if err := s.faults.Check("s3only/before-put"); err != nil {
			return err
		}

		s.mu.Lock()
		stale := s.latest[dataKey(ev.Ref.Object)] > ev.Ref.Version
		s.mu.Unlock()
		if stale {
			// A newer version of this object already landed (an earlier
			// attempt of this chain persisted it before this older pending
			// version was retried): PUTting it would regress the object.
			// Its metadata records would be overwritten by the newer PUT
			// anyway — architecture 1 keeps one version per object — so
			// the event is complete as-is. The foreign buffer is NOT
			// drained: the riders move on to the next carrier.
			res.recordRef(ev.Ref)
			continue
		}

		s.mu.Lock()
		foreign := s.foreign
		s.foreign = nil
		s.mu.Unlock()

		meta, gets, err := s.encodeMetadata(ctx, ev.Ref, ev.Records, foreign)
		if err != nil {
			return err
		}
		s.mintRider(dataKey(ev.Ref.Object), ev.Ref, ev.Records, foreign, meta)
		p := dataPut{key: dataKey(ev.Ref.Object), data: ev.Data, meta: meta, gets: gets, ref: ev.Ref}
		if len(foreign) > 0 {
			p.riders = riderSubjects(foreign)
			p.carriesSaved = savedPresent
			savedPresent = false // the drain emptied the buffer
		}
		puts = append(puts, p)
	}

	// The data PUTs: data and provenance stored atomically, overlapped
	// across independent objects.
	if err := s.doPuts(ctx, puts, res); err != nil {
		return err
	}
	return s.faults.Check("s3only/after-put")
}

// putCarrier executes one provenance-carrying PUT under the retrier. When
// the retry budget exhausts on an ambiguous lost-response chain
// (awserr.ErrRequestTimeout: the op may have been applied), a HEAD probe
// settles whether this exact write — same body, same metadata — is in fact
// durable. Without the probe, a landed-but-reported-failed carrier would
// have its rider records restored and re-carried by a later PUT under a
// different key, double-applying them.
func (s *Store) putCarrier(ctx context.Context, op, key string, body []byte, meta map[string]string) error {
	err := s.retrier.Do(ctx, op, func() error {
		return s.cloud.S3.Put(s.bucket, key, body, meta)
	})
	if err == nil || !errors.Is(err, awserr.ErrRequestTimeout) {
		return err
	}
	info, herr := s.cloud.S3.Head(s.bucket, key)
	if herr != nil {
		return err
	}
	sum := md5.Sum(body)
	if info.ETag == hex.EncodeToString(sum[:]) && maps.Equal(info.Metadata, meta) {
		return nil // the lost-response attempt applied; the write is durable
	}
	return err
}

// mintRider commits the carrier's leaf set to the ledger and stamps the
// checkpoint token into the PUT's metadata, so the commitment rides the
// write the batch was issuing anyway. The ledger slot is the data key:
// re-PUTting a key replaces its object and metadata wholesale, so the
// slot's previous leaves are replaced to match. A subject with no records
// contributes no leaf — the scan would never yield it as an entry.
func (s *Store) mintRider(key string, own prov.Ref, ownRecords, foreign []prov.Record, meta map[string]string) {
	if s.ledger == nil {
		return
	}
	var leaves []string
	if len(ownRecords) > 0 {
		leaves = append(leaves, integrity.SubjectHash(own, ownRecords))
	}
	for _, ref := range riderSubjects(foreign) {
		var recs []prov.Record
		for _, r := range foreign {
			if r.Subject == ref {
				recs = append(recs, r)
			}
		}
		leaves = append(leaves, integrity.SubjectHash(ref, recs))
	}
	meta[integrity.AttrRoot] = s.ledger.Commit(map[string][]string{key: leaves}).Token()
}

// riderSubjects returns the distinct subjects of the buffered records, in
// first-appearance order.
func riderSubjects(records []prov.Record) []prov.Ref {
	seen := make(map[prov.Ref]bool, len(records))
	var out []prov.Ref
	for _, r := range records {
		if !seen[r.Subject] {
			seen[r.Subject] = true
			out = append(out, r.Subject)
		}
	}
	return out
}

// doPuts executes the batch's data PUTs with bounded concurrency. PUTs to
// the same key (several versions of one object in one batch) stay in order
// on one worker, so last-writer-wins resolves to the newest version.
// Transient S3 errors back off and retry; a re-PUT of the same key, body
// and metadata is idempotent, so a retry after a lost response cannot
// double-apply. Completed PUTs are recorded in res even when a later PUT
// sinks the batch.
func (s *Store) doPuts(ctx context.Context, puts []dataPut, res *batchResult) error {
	if len(puts) == 0 {
		return nil
	}
	// Group same-key PUTs, preserving batch order within each group.
	var order []string
	groups := make(map[string][]dataPut)
	for _, p := range puts {
		if _, ok := groups[p.key]; !ok {
			order = append(order, p.key)
		}
		groups[p.key] = append(groups[p.key], p)
	}
	return core.RunLimited(ctx, len(order), s.concurrency, func(i int) error {
		for _, p := range groups[order[i]] {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := s.putCarrier(ctx, "s3only/data-put", p.key, p.data, p.meta); err != nil {
				return fmt.Errorf("s3only: data put: %w", err)
			}
			s.mu.Lock()
			if p.ref.Version > s.latest[p.key] {
				s.latest[p.key] = p.ref.Version
			}
			s.mu.Unlock()
			s.catalog.Observe(p.key, p.gets)
			res.record(p)
		}
		return nil
	})
}

// encodeMetadata renders own + foreign records into S3 metadata, diverting
// >1 KB values to overflow objects and spilling past-2KB remainder into a
// bundle object. The overflow and bundle PUTs happen before the data PUT.
func (s *Store) encodeMetadata(ctx context.Context, subject prov.Ref, own, foreign []prov.Record) (map[string]string, int64, error) {
	meta := map[string]string{
		metaVersion: strconv.Itoa(int(subject.Version)),
	}

	overflowN := 0
	size := len(metaVersion) + len(meta[metaVersion])
	var spill []prov.Record

	// encodeValue diverts >1 KB values to their own S3 objects ("There are
	// 24,952 such records that result in an equal number of additional PUT
	// operations") and escapes literals. It returns the stored form.
	encodeValue := func(v string) (string, error) {
		if len(v) <= core.OverflowThreshold {
			return core.EscapeLiteral(v), nil
		}
		okey := overflowKey(subject, overflowN)
		overflowN++
		err := s.retrier.Do(ctx, "s3only/overflow-put", func() error {
			return s.cloud.S3.Put(s.bucket, okey, []byte(v), nil)
		})
		if err != nil {
			return "", fmt.Errorf("s3only: overflow put: %w", err)
		}
		if err := s.faults.Check("s3only/after-overflow-put"); err != nil {
			return "", err
		}
		return core.PointerValue(okey), nil
	}

	add := func(key string, rec prov.Record, foreignSubject bool) error {
		value := rec.Value.String()
		if rec.Value.Kind == prov.KindString {
			var err error
			value, err = encodeValue(value)
			if err != nil {
				return err
			}
		}
		var entry string
		if foreignSubject {
			entry = rec.Subject.String() + fieldSep + rec.Attr + fieldSep + value
		} else {
			entry = rec.Attr + fieldSep + value
		}
		if size+len(key)+len(entry) > budget {
			// No metadata room left: the record goes to the spill bundle,
			// keeping its (possibly pointer-encoded) stored form.
			if rec.Value.Kind == prov.KindString {
				rec.Value = prov.StringValue(value)
			}
			spill = append(spill, rec)
			return nil
		}
		meta[key] = entry
		size += len(key) + len(entry)
		return nil
	}

	for i, rec := range own {
		if err := add(fmt.Sprintf("p-%d", i), rec, false); err != nil {
			return nil, 0, err
		}
	}
	for i, rec := range foreign {
		if err := add(fmt.Sprintf("q-%d", i), rec, true); err != nil {
			return nil, 0, err
		}
	}

	gets := int64(overflowN)
	if len(spill) > 0 {
		bkey := bundleKey(subject)
		blob, err := prov.MarshalJSONRecords(spill)
		if err != nil {
			return nil, 0, err
		}
		err = s.retrier.Do(ctx, "s3only/bundle-put", func() error {
			return s.cloud.S3.Put(s.bucket, bkey, blob, nil)
		})
		if err != nil {
			return nil, 0, fmt.Errorf("s3only: bundle put: %w", err)
		}
		if err := s.faults.Check("s3only/after-bundle-put"); err != nil {
			return nil, 0, err
		}
		meta[metaOverflow] = bkey
		gets++
	}
	return meta, gets, nil
}

// fieldSep separates fields inside a metadata value.
const fieldSep = "\x1f"

// decodeEntry parses one metadata value, resolving overflow pointers.
func (s *Store) decodeEntry(subject prov.Ref, key, entry string, foreign bool) (prov.Record, error) {
	parts := strings.SplitN(entry, fieldSep, 3)
	var attr, raw string
	subj := subject
	if foreign {
		if len(parts) != 3 {
			return prov.Record{}, fmt.Errorf("%w: foreign entry %q", prov.ErrMalformed, key)
		}
		ref, err := prov.ParseRef(parts[0])
		if err != nil {
			return prov.Record{}, err
		}
		subj, attr, raw = ref, parts[1], parts[2]
	} else {
		if len(parts) != 2 {
			return prov.Record{}, fmt.Errorf("%w: entry %q", prov.ErrMalformed, key)
		}
		attr, raw = parts[0], parts[1]
	}

	okey, literal, isPtr := core.DecodeValue(raw)
	if isPtr {
		obj, err := s.cloud.S3.Get(s.bucket, okey)
		if err != nil {
			return prov.Record{}, fmt.Errorf("s3only: overflow get: %w", err)
		}
		literal = string(obj.Body)
	}

	if prov.IsRefAttr(attr) {
		ref, err := prov.ParseRef(literal)
		if err != nil {
			return prov.Record{}, err
		}
		return prov.Record{Subject: subj, Attr: attr, Value: prov.RefValue(ref)}, nil
	}
	return prov.Record{Subject: subj, Attr: attr, Value: prov.StringValue(literal)}, nil
}

// decodeAll extracts every record (own and foreign) from an object's
// metadata, resolving overflow pointers and the spill bundle.
func (s *Store) decodeAll(object prov.ObjectID, meta map[string]string) (ref prov.Ref, records []prov.Record, err error) {
	ver, err := strconv.Atoi(meta[metaVersion])
	if err != nil {
		return prov.Ref{}, nil, fmt.Errorf("%w: missing version metadata", prov.ErrMalformed)
	}
	ref = prov.Ref{Object: object, Version: prov.Version(ver)}

	// Deterministic order: p-* then q-* by numeric suffix, then the
	// bundle. Indexes may be sparse — records that spilled to the bundle
	// leave gaps — so enumerate the keys rather than counting up.
	decodePrefix := func(prefix string, foreign bool) error {
		var idx []int
		for k := range meta {
			if strings.HasPrefix(k, prefix) {
				n, err := strconv.Atoi(strings.TrimPrefix(k, prefix))
				if err != nil {
					return fmt.Errorf("%w: metadata key %q", prov.ErrMalformed, k)
				}
				idx = append(idx, n)
			}
		}
		sort.Ints(idx)
		for _, n := range idx {
			key := prefix + strconv.Itoa(n)
			rec, err := s.decodeEntry(ref, key, meta[key], foreign)
			if err != nil {
				return err
			}
			records = append(records, rec)
		}
		return nil
	}
	if err := decodePrefix("p-", false); err != nil {
		return prov.Ref{}, nil, err
	}
	if err := decodePrefix("q-", true); err != nil {
		return prov.Ref{}, nil, err
	}
	if bkey, ok := meta[metaOverflow]; ok {
		obj, err := s.cloud.S3.Get(s.bucket, bkey)
		if err != nil {
			return prov.Ref{}, nil, fmt.Errorf("s3only: bundle get: %w", err)
		}
		spilled, err := prov.UnmarshalJSONRecords(obj.Body)
		if err != nil {
			return prov.Ref{}, nil, err
		}
		// Bundle string values carry the stored form: unescape literals
		// and resolve overflow pointers.
		for _, rec := range spilled {
			if rec.Value.Kind == prov.KindString {
				okey, literal, isPtr := core.DecodeValue(rec.Value.Str)
				if isPtr {
					oobj, err := s.cloud.S3.Get(s.bucket, okey)
					if err != nil {
						return prov.Ref{}, nil, fmt.Errorf("s3only: overflow get: %w", err)
					}
					literal = string(oobj.Body)
				}
				rec.Value = prov.StringValue(literal)
			}
			records = append(records, rec)
		}
	}
	return ref, records, nil
}

// Get implements core.Store. One GET returns data and metadata together, so
// the provenance always describes the returned bytes.
func (s *Store) Get(ctx context.Context, object prov.ObjectID) (*core.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	obj, err := s.cloud.S3.Get(s.bucket, dataKey(object))
	if err != nil {
		if errors.Is(err, s3.ErrNoSuchKey) {
			return nil, fmt.Errorf("%w: %s", core.ErrNotFound, object)
		}
		return nil, err
	}
	ref, records, err := s.decodeAll(object, obj.Metadata)
	if err != nil {
		return nil, err
	}
	// Keep only this subject's records for the result object.
	var own []prov.Record
	for _, r := range records {
		if r.Subject == ref {
			own = append(own, r)
		}
	}
	return &core.Object{Ref: ref, Data: obj.Body, Records: own}, nil
}

// Provenance implements core.Store. For the current version of an object a
// HEAD suffices ("the only way to read provenance is by issuing a HEAD call
// on an object"); any other ref requires the full scan.
func (s *Store) Provenance(ctx context.Context, ref prov.Ref) ([]prov.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	info, err := s.cloud.S3.Head(s.bucket, dataKey(ref.Object))
	if err == nil {
		cur, records, derr := s.decodeAll(ref.Object, info.Metadata)
		if derr != nil {
			return nil, derr
		}
		if cur == ref {
			var own []prov.Record
			for _, r := range records {
				if r.Subject == ref {
					own = append(own, r)
				}
			}
			return own, nil
		}
	} else if !errors.Is(err, s3.ErrNoSuchKey) {
		return nil, err
	}

	// Older version or transient subject: scan everything.
	all, err := s.AllProvenance(ctx)
	if err != nil {
		return nil, err
	}
	records, ok := all[ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", core.ErrNotFound, ref)
	}
	return records, nil
}

// AllProvenance implements core.Querier by iterating over the provenance of
// every object in the repository: LIST pages, bounded-concurrency HEADs per
// page, one GET per overflow/bundle object. This is the cost Table 3
// charges the S3-only architecture for every query class — paid once per
// snapshot generation when the cache is enabled, once per call otherwise.
func (s *Store) AllProvenance(ctx context.Context) (map[prov.Ref][]prov.Record, error) {
	if s.cache != nil {
		g, err := s.snapshot(ctx)
		if err != nil {
			return nil, err
		}
		return qcache.MapFromGraph(g), nil
	}
	out := make(map[prov.Ref][]prov.Record)
	for entry, err := range s.scanSeq(ctx) {
		if err != nil {
			return nil, err
		}
		out[entry.Ref] = append(out[entry.Ref], entry.Records...)
	}
	return out, nil
}

// AllProvenanceSeq streams the repository scan. With the cache disabled
// it is the live paged scan, one LIST page resident at a time; a subject
// whose records rode more than one carrier PUT may then be yielded more
// than once. With the cache enabled it yields from the (built-if-needed)
// snapshot — merged, one entry per subject, zero cloud ops when warm.
func (s *Store) AllProvenanceSeq(ctx context.Context) iter.Seq2[core.Entry, error] {
	if s.cache == nil {
		return s.scanSeq(ctx)
	}
	return func(yield func(core.Entry, error) bool) {
		g, err := s.snapshot(ctx)
		if err != nil {
			yield(core.Entry{}, err)
			return
		}
		for _, subject := range g.Subjects() {
			if !yield(core.Entry{Ref: subject, Records: g.Records(subject)}, nil) {
				return
			}
		}
	}
}

// scanned is one object's decoded scan result.
type scanned struct {
	skip    bool // deleted between LIST and HEAD
	records []prov.Record
}

// scanPage HEADs and decodes one LIST page with bounded concurrency,
// returning results in page order. Every worker checks ctx before each
// HEAD, so cancellation mid-page stops promptly instead of draining the
// page's remaining objects.
func (s *Store) scanPage(ctx context.Context, infos []s3.Info) ([]scanned, error) {
	out := make([]scanned, len(infos))
	err := core.RunLimited(ctx, len(infos), s.scanConc, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		head, err := s.cloud.S3.Head(s.bucket, infos[i].Key)
		if err != nil {
			out[i].skip = true // deleted between LIST and HEAD
			return nil
		}
		object := prov.ObjectID(strings.TrimPrefix(infos[i].Key, dataPrefix))
		_, records, err := s.decodeAll(object, head.Metadata)
		if err != nil {
			return err
		}
		out[i].records = records
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scanSeq is the live repository scan: LIST pages, parallel HEADs within
// each page, entries yielded in page order. Cancellation is honored per
// object, not per page.
func (s *Store) scanSeq(ctx context.Context) iter.Seq2[core.Entry, error] {
	return func(yield func(core.Entry, error) bool) {
		marker := ""
		for {
			if err := ctx.Err(); err != nil {
				yield(core.Entry{}, err)
				return
			}
			page, err := s.cloud.S3.List(s.bucket, dataPrefix, marker, 0)
			if err != nil {
				yield(core.Entry{}, err)
				return
			}
			results, err := s.scanPage(ctx, page.Objects)
			if err != nil {
				yield(core.Entry{}, err)
				return
			}
			for _, res := range results {
				if res.skip {
					continue
				}
				var subjects []prov.Ref
				bySubject := make(map[prov.Ref][]prov.Record)
				for _, r := range res.records {
					if _, ok := bySubject[r.Subject]; !ok {
						subjects = append(subjects, r.Subject)
					}
					bySubject[r.Subject] = append(bySubject[r.Subject], r)
				}
				for _, subject := range subjects {
					if !yield(core.Entry{Ref: subject, Records: bySubject[subject]}, nil) {
						return
					}
				}
			}
			if !page.IsTruncated {
				return
			}
			marker = page.NextMarker
		}
	}
}

// buildGraph materializes the scan into a provenance graph.
func (s *Store) buildGraph(ctx context.Context) (*prov.Graph, error) {
	g := prov.NewGraph()
	for entry, err := range s.scanSeq(ctx) {
		if err != nil {
			return nil, err
		}
		g.AddAll(entry.Records)
	}
	return g, nil
}

// snapshot returns the cached graph, building it (singleflight) on a miss.
func (s *Store) snapshot(ctx context.Context) (*prov.Graph, error) {
	return s.cache.Graph(ctx, s.buildGraph)
}

// CacheStats exposes the snapshot cache counters (zero when disabled).
func (s *Store) CacheStats() qcache.Stats {
	if s.cache == nil {
		return qcache.Stats{}
	}
	return s.cache.Stats()
}

// scanGraph builds the full provenance graph, from the snapshot cache when
// enabled.
func (s *Store) scanGraph(ctx context.Context) (*prov.Graph, error) {
	if s.cache != nil {
		return s.snapshot(ctx)
	}
	return s.buildGraph(ctx)
}

// ProvenanceGraph implements core.GraphQuerier: the repository graph,
// shared from the snapshot cache when warm. Read-only.
func (s *Store) ProvenanceGraph(ctx context.Context) (*prov.Graph, error) {
	return s.scanGraph(ctx)
}

// Query implements core.Querier. Every descriptor here costs at most one
// repository pass: the architecture has no index ("if we do not know the
// exact object whose provenance we seek, then we might need to iterate
// over the provenance of every object in the repository"), so filters and
// traversals evaluate client-side on the materialized graph — the shared
// core.EvalQuery semantics — while the unfiltered Q.1 shape streams the
// scan without materializing. Paginated descriptors pin their evaluation
// to the snapshot generation of the first page.
func (s *Store) Query(ctx context.Context, q prov.Query) iter.Seq2[core.Entry, error] {
	return func(yield func(core.Entry, error) bool) {
		if err := q.Validate(); err != nil {
			yield(core.Entry{}, err)
			return
		}
		if q.Limit > 0 || q.Cursor != "" {
			core.RunPaged(ctx, q, s.stampToken(), &s.pins, s.evalAll, yield)
			return
		}
		s.runQuery(ctx, q, yield)
	}
}

// stampToken renders the repository generation cursors bind to.
func (s *Store) stampToken() string {
	st := s.stamp()
	return fmt.Sprintf("%d.%d", st.Gen, st.Epoch)
}

// StampToken implements core.Stamped: the repository generation this
// store's cursors bind to, exported for composing stores (the shard
// router) that mint composite stamps.
func (s *Store) StampToken() string { return s.stampToken() }

// evalAll materializes a full evaluation for the paging layer. On the
// uncached Q.1 streaming path a subject whose records rode several carrier
// PUTs arrives in pieces; pages must have exactly one entry per ref (the
// no-duplicates cursor contract), so pieces merge here before pinning.
func (s *Store) evalAll(ctx context.Context, q prov.Query) ([]core.Entry, error) {
	var out []core.Entry
	idx := make(map[prov.Ref]int)
	var ferr error
	s.runQuery(ctx, q, func(e core.Entry, err error) bool {
		if err != nil {
			ferr = err
			return false
		}
		if i, ok := idx[e.Ref]; ok {
			out[i].Records = append(out[i].Records, e.Records...)
			return true
		}
		idx[e.Ref] = len(out)
		out = append(out, e)
		return true
	})
	return out, ferr
}

// runQuery executes one non-paginated descriptor.
func (s *Store) runQuery(ctx context.Context, q prov.Query, yield func(core.Entry, error) bool) {
	if !q.HasFilters() && q.Direction == prov.TraverseNone && q.Projection == prov.ProjectFull {
		// Q.1: stream the scan (or the warm snapshot) as-is. A subject
		// whose records rode several carrier PUTs may stream in pieces on
		// the uncached path, exactly like the deprecated AllProvenanceSeq.
		for entry, err := range s.AllProvenanceSeq(ctx) {
			if err != nil {
				yield(core.Entry{}, err)
				return
			}
			if !yield(entry, nil) {
				return
			}
		}
		return
	}
	// Anything filtered or traversed needs whole subjects (records can
	// split across carrier PUTs) and possibly reverse edges: materialize
	// the graph from the same single scan and evaluate in memory.
	g, err := s.scanGraph(ctx)
	if err != nil {
		yield(core.Entry{}, err)
		return
	}
	for _, e := range core.EvalQuery(g, q) {
		if !yield(e, nil) {
			return
		}
	}
}

// Explain implements core.Querier: on this architecture every cold plan is
// the same full scan Table 3 charges — LIST pages, one HEAD per object,
// one GET per overflow/bundle object — and every warm plan is free.
func (s *Store) Explain(q prov.Query) core.QueryPlan {
	// Exact only while every region mutation was this client's own: the
	// catalog never sees other writers' objects.
	p := core.QueryPlan{Arch: s.Name(), Exact: s.tracker.Foreign() == 0}
	if err := q.Validate(); err != nil {
		p.Strategy = "invalid"
		return p
	}
	if q.Cursor != "" {
		if core.ExplainCursor(&p, q, &s.pins, s.stampToken()) {
			return p
		}
		// Evicted pin at an unchanged generation: fall through and cost the
		// re-evaluation (free only if the snapshot is warm).
	}
	if s.cache != nil && s.cache.Warm() {
		p.Strategy = "snapshot"
		p.Cached = true
		p.AddStep("-", "snapshot", 0, "warm snapshot: zero cloud ops")
	} else {
		p.Strategy = "scan"
		objects, gets := s.catalog.ScanCost()
		p.AddStep("S3", "LIST", core.PlanPages(objects, s3.DefaultMaxKeys), "page the data prefix")
		p.AddStep("S3", "HEAD", int64(objects), "provenance rides object metadata: one HEAD per object")
		if gets > 0 {
			p.AddStep("S3", "GET", gets, "resolve overflow and bundle objects")
		}
	}
	if q.Limit > 0 {
		p.AddStep("-", "paginate", 0, "first page evaluates fully, sorts and pins; later pages are free")
	}
	return p
}

// OutputsOf implements Q.2 over the scan.
//
// Deprecated: build prov.QOutputsOf and use Query.
func (s *Store) OutputsOf(ctx context.Context, tool string) ([]prov.Ref, error) {
	return core.OutputsOf(ctx, s, tool)
}

// DescendantsOfOutputs implements Q.3 over the scan.
//
// Deprecated: build prov.QDescendantsOfOutputs and use Query.
func (s *Store) DescendantsOfOutputs(ctx context.Context, tool string) ([]prov.Ref, error) {
	return core.DescendantsOfOutputs(ctx, s, tool)
}

// Dependents finds every subject whose inputs reference any version of
// object. Like every other query here, it scans.
//
// Deprecated: build prov.QDependents and use Query.
func (s *Store) Dependents(ctx context.Context, object prov.ObjectID) ([]prov.Ref, error) {
	return core.Dependents(ctx, s, object)
}

// Sync persists any buffered transient provenance that no descendant PUT
// carried (processes whose flush trailed the session's last file close).
// The records ride a one-byte marker object so they remain discoverable by
// the metadata scan, preserving this architecture's single-PUT atomicity.
func (s *Store) Sync(ctx context.Context) error {
	return s.tracker.Track(func() error { return s.sync(ctx) })
}

func (s *Store) sync(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	foreign := s.foreign
	s.foreign = nil
	seq := s.pnodeSeq
	s.pnodeSeq++
	s.mu.Unlock()
	if len(foreign) == 0 {
		return nil
	}
	// The marker PUT below changes what a scan sees; even a failed attempt
	// may have written overflow objects.
	defer s.gen.Bump()

	subject := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/.pnodes/%06d", seq)), Version: 0}
	restore := func() {
		s.mu.Lock()
		s.foreign = append(foreign, s.foreign...)
		s.mu.Unlock()
	}
	meta, gets, err := s.encodeMetadata(ctx, subject, nil, foreign)
	if err != nil {
		restore()
		return err
	}
	s.mintRider(dataKey(subject.Object), subject, nil, foreign, meta)
	if err := s.putCarrier(ctx, "s3only/pnode-put", dataKey(subject.Object), []byte{'.'}, meta); err != nil {
		// The records did not persist: put them back so a later Sync
		// retries them, and release the marker sequence number so that
		// retry targets the same key (an overwrite, never a duplicate
		// marker carrying the same records).
		restore()
		s.mu.Lock()
		if s.pnodeSeq == seq+1 {
			s.pnodeSeq = seq
		}
		s.mu.Unlock()
		return fmt.Errorf("s3only: pnode put: %w", err)
	}
	s.catalog.Observe(dataKey(subject.Object), gets)
	return nil
}

// Audit implements integrity.Auditor: a live paged scan — never the query
// cache, a cached snapshot could mask live tampering — that unions each
// subject's stored records and harvests every surviving checkpoint rider
// from the carrier metadata. RetainsHistory is false: this architecture
// overwrites an object's metadata in place, so superseded file versions
// legitimately vanish and a missing predecessor is not a divergence.
func (s *Store) Audit(ctx context.Context) (*integrity.Audit, error) {
	a := &integrity.Audit{Entries: make(map[prov.Ref][]prov.Record)}
	marker := ""
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		page, err := s.cloud.S3.List(s.bucket, dataPrefix, marker, 0)
		if err != nil {
			return nil, err
		}
		for _, info := range page.Objects {
			head, err := s.cloud.S3.Head(s.bucket, info.Key)
			if err != nil {
				continue // deleted between LIST and HEAD
			}
			if tok, ok := head.Metadata[integrity.AttrRoot]; ok {
				if cp, err := integrity.ParseCheckpoint(tok); err == nil {
					a.Checkpoints = append(a.Checkpoints, cp)
				}
			}
			object := prov.ObjectID(strings.TrimPrefix(info.Key, dataPrefix))
			_, records, err := s.decodeAll(object, head.Metadata)
			if err != nil {
				return nil, err
			}
			for _, r := range records {
				a.Entries[r.Subject] = append(a.Entries[r.Subject], r)
			}
		}
		if !page.IsTruncated {
			return a, nil
		}
		marker = page.NextMarker
	}
}

// RetryStats snapshots the store's retry counters.
func (s *Store) RetryStats() retry.Snapshot { return s.retrier.Snapshot() }

var (
	_ core.Store        = (*Store)(nil)
	_ core.Querier      = (*Store)(nil)
	_ core.GraphQuerier = (*Store)(nil)
	_ core.Syncer       = (*Store)(nil)
)
