package s3only

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

func newTestStore(t *testing.T, faults *sim.FaultPlan) (*Store, *cloud.Cloud) {
	t.Helper()
	cl := cloud.New(cloud.Config{Seed: 1})
	st, err := New(Config{Cloud: cl, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	return st, cl
}

func fileEvent(object string, version int, data string, records ...prov.Record) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(object), Version: prov.Version(version)}
	base := []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeFile),
		prov.NewString(ref, prov.AttrName, object),
	}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: []byte(data), Records: append(base, records...)}
}

func procEvent(name string, pid int, records ...prov.Record) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("proc/%d/%s", pid, name)), Version: 0}
	base := []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeProcess),
		prov.NewString(ref, prov.AttrName, name),
	}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeProcess, Records: append(base, records...)}
}

func TestPutGetRoundTrip(t *testing.T) {
	st, _ := newTestStore(t, nil)
	ctx := context.Background()

	ev := fileEvent("/out.dat", 0, "payload")
	if err := core.Put(ctx, st, ev); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(ctx, "/out.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte("payload")) {
		t.Fatalf("data = %q", got.Data)
	}
	if got.Ref != ev.Ref {
		t.Fatalf("ref = %v, want %v", got.Ref, ev.Ref)
	}
	if len(got.Records) != 2 {
		t.Fatalf("records = %v", got.Records)
	}
}

func TestGetMissing(t *testing.T) {
	st, _ := newTestStore(t, nil)
	if _, err := st.Get(context.Background(), "/ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestTransientRecordsRideDescendantPut(t *testing.T) {
	st, cl := newTestStore(t, nil)
	ctx := context.Background()

	proc := procEvent("tool", 9)
	puts := func() int64 { return cl.Usage().OpCount(billing.S3, "PUT") }
	before := puts()
	if err := core.Put(ctx, st, proc); err != nil {
		t.Fatal(err)
	}
	// A transient flush alone must not touch S3 (paper: the only extra
	// PUTs in this architecture come from >1 KB records).
	if got := puts(); got != before {
		t.Fatalf("transient flush issued %d PUTs", got-before)
	}

	file := fileEvent("/out.dat", 0, "x", prov.NewInput(
		prov.Ref{Object: "/out.dat", Version: 0}, proc.Ref))
	if err := core.Put(ctx, st, file); err != nil {
		t.Fatal(err)
	}
	if got := puts(); got != before+1 {
		t.Fatalf("file flush issued %d PUTs, want exactly 1", got-before)
	}

	// The process provenance is now retrievable (via the scan path).
	records, err := st.Provenance(ctx, proc.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("process records = %v", records)
	}
}

func TestOverflowRecordsBecomeSeparateObjects(t *testing.T) {
	st, cl := newTestStore(t, nil)
	ctx := context.Background()

	bigEnv := strings.Repeat("E", 1500) // > 1 KB: must overflow
	ref := prov.Ref{Object: "/out.dat", Version: 0}
	ev := fileEvent("/out.dat", 0, "x",
		prov.NewString(ref, prov.AttrEnv, bigEnv))

	before := cl.Usage().OpCount(billing.S3, "PUT")
	if err := core.Put(ctx, st, ev); err != nil {
		t.Fatal(err)
	}
	delta := cl.Usage().OpCount(billing.S3, "PUT") - before
	if delta != 2 { // overflow object + data object
		t.Fatalf("PUT delta = %d, want 2 (one overflow)", delta)
	}

	got, err := st.Get(ctx, "/out.dat")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range got.Records {
		if r.Attr == prov.AttrEnv && r.Value.Str == bigEnv {
			found = true
		}
	}
	if !found {
		t.Fatalf("overflowed value not resolved: %v", got.Records)
	}
}

func TestMetadataSpillBundle(t *testing.T) {
	st, _ := newTestStore(t, nil)
	ctx := context.Background()

	// Many sub-1KB records whose total exceeds the 2 KB metadata limit.
	ref := prov.Ref{Object: "/fat.dat", Version: 0}
	var extra []prov.Record
	for i := 0; i < 20; i++ {
		extra = append(extra, prov.NewString(ref, prov.AttrEnv, strings.Repeat("v", 200)))
	}
	if err := core.Put(ctx, st, fileEvent("/fat.dat", 0, "x", extra...)); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(ctx, "/fat.dat")
	if err != nil {
		t.Fatal(err)
	}
	envs := 0
	for _, r := range got.Records {
		if r.Attr == prov.AttrEnv {
			envs++
		}
	}
	if envs != 20 {
		t.Fatalf("recovered %d env records, want 20 (bundle lost records)", envs)
	}
}

func TestAtomicityUnderCrash(t *testing.T) {
	// Crash before the PUT: neither data nor provenance may exist.
	faults := sim.NewFaultPlan()
	faults.Arm("s3only/before-put")
	st, _ := newTestStore(t, faults)
	ctx := context.Background()

	err := core.Put(ctx, st, fileEvent("/out.dat", 0, "x"))
	if !errors.Is(err, sim.ErrCrash) {
		t.Fatalf("err = %v, want injected crash", err)
	}
	if _, err := st.Get(ctx, "/out.dat"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("data visible after crash: %v", err)
	}
	all, err := st.AllProvenance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 0 {
		t.Fatalf("provenance visible after crash: %v", all)
	}
}

func TestReadCorrectnessUnderEventualConsistency(t *testing.T) {
	// With propagation delays, reads may be stale — but data and
	// provenance always match, because they travel in one PUT.
	cl := cloud.New(cloud.Config{Seed: 7, MaxDelay: 10 * time.Second})
	st, err := New(Config{Cloud: cl})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for v := 0; v < 2; v++ {
		ref := prov.Ref{Object: "/d", Version: prov.Version(v)}
		ev := pass.FlushEvent{Ref: ref, Type: prov.TypeFile,
			Data: []byte(fmt.Sprintf("gen%d", v)),
			Records: []prov.Record{
				prov.NewString(ref, prov.AttrType, prov.TypeFile),
				prov.NewString(ref, prov.AttrEnv, fmt.Sprintf("gen%d", v)),
			}}
		if err := core.Put(ctx, st, ev); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 200; i++ {
		obj, err := st.Get(ctx, "/d")
		if errors.Is(err, core.ErrNotFound) {
			continue // the serving replica has not seen any PUT yet: fine
		}
		if err != nil {
			t.Fatal(err)
		}
		var envVal string
		for _, r := range obj.Records {
			if r.Attr == prov.AttrEnv {
				envVal = r.Value.Str
			}
		}
		if string(obj.Data) != envVal {
			t.Fatalf("torn read: data %q with provenance %q", obj.Data, envVal)
		}
	}
}

func TestProvenanceCurrentVersionUsesHead(t *testing.T) {
	st, cl := newTestStore(t, nil)
	ctx := context.Background()
	if err := core.Put(ctx, st, fileEvent("/x", 3, "v3")); err != nil {
		t.Fatal(err)
	}
	before := cl.Usage().Ops(billing.S3)
	ref := prov.Ref{Object: "/x", Version: 3}
	records, err := st.Provenance(ctx, ref)
	if err != nil || len(records) != 2 {
		t.Fatalf("records = %v, %v", records, err)
	}
	if delta := cl.Usage().Ops(billing.S3) - before; delta > 2 {
		t.Fatalf("current-version Provenance cost %d ops, want HEAD-only", delta)
	}
}

func TestQueriesRequireFullScan(t *testing.T) {
	st, cl := newTestStore(t, nil)
	ctx := context.Background()

	// blast -> out1; other -> out2.
	blast := procEvent("blast", 1)
	other := procEvent("other", 2)
	out1 := fileEvent("/out1", 0, "a", prov.NewInput(prov.Ref{Object: "/out1"}, blast.Ref))
	out2 := fileEvent("/out2", 0, "b", prov.NewInput(prov.Ref{Object: "/out2"}, other.Ref))
	child := fileEvent("/child", 0, "c", prov.NewInput(prov.Ref{Object: "/child"}, prov.Ref{Object: "/out1"}))
	for _, ev := range []pass.FlushEvent{blast, out1, other, out2, child} {
		if err := core.Put(ctx, st, ev); err != nil {
			t.Fatal(err)
		}
	}

	before := cl.Usage().OpCount(billing.S3, "HEAD")
	outputs, err := st.OutputsOf(ctx, "blast")
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 1 || outputs[0].Object != "/out1" {
		t.Fatalf("OutputsOf = %v", outputs)
	}
	heads := cl.Usage().OpCount(billing.S3, "HEAD") - before
	if heads < 3 {
		t.Fatalf("query issued %d HEADs; expected one per stored object (full scan)", heads)
	}

	desc, err := st.DescendantsOfOutputs(ctx, "blast")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 1 || desc[0].Object != "/child" {
		t.Fatalf("DescendantsOfOutputs = %v", desc)
	}

	all, err := st.AllProvenance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 { // 3 files + 2 processes
		t.Fatalf("AllProvenance subjects = %d, want 5", len(all))
	}
}

func TestPropertiesRow(t *testing.T) {
	st, _ := newTestStore(t, nil)
	p := st.Properties()
	if !p.Atomicity || !p.Consistency || !p.CausalOrdering || p.EfficientQuery {
		t.Fatalf("properties = %+v, want Table 1 row 1", p)
	}
	if !p.ReadCorrectness() {
		t.Fatal("read correctness should hold")
	}
	if st.Name() != "s3" {
		t.Fatalf("Name = %q", st.Name())
	}
}

func TestFullWorkloadThroughStore(t *testing.T) {
	st, _ := newTestStore(t, nil)
	ctx := context.Background()
	sys := pass.NewSystem(pass.Config{Flush: core.Flusher(st)})

	if err := sys.Ingest(ctx, "/in", []byte("input")); err != nil {
		t.Fatal(err)
	}
	p := sys.Exec(nil, pass.ExecSpec{Name: "tool", Argv: []string{"tool"}})
	if err := sys.Read(p, "/in"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write(p, "/out", []byte("result"), pass.Truncate); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(ctx, p, "/out"); err != nil {
		t.Fatal(err)
	}

	obj, err := st.Get(ctx, "/out")
	if err != nil || string(obj.Data) != "result" {
		t.Fatalf("Get = %v, %v", obj, err)
	}
	outputs, err := st.OutputsOf(ctx, "tool")
	if err != nil || len(outputs) != 1 {
		t.Fatalf("OutputsOf = %v, %v", outputs, err)
	}
}

// --- query-performance subsystem -------------------------------------------

// loadN stores n independent file versions.
func loadN(t *testing.T, st *Store, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if err := core.Put(ctx, st, fileEvent(fmt.Sprintf("/load/%03d", i), 0, "x")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotCacheMakesRepeatQueriesFree(t *testing.T) {
	st, cl := newTestStore(t, nil)
	ctx := context.Background()
	blast := procEvent("blast", 1)
	out := fileEvent("/out", 0, "o", prov.NewInput(prov.Ref{Object: "/out"}, blast.Ref))
	for _, ev := range []pass.FlushEvent{blast, out} {
		if err := core.Put(ctx, st, ev); err != nil {
			t.Fatal(err)
		}
	}
	loadN(t, st, 20)

	// Cold: the full scan.
	before := cl.Usage().TotalOps()
	if _, err := st.OutputsOf(ctx, "blast"); err != nil {
		t.Fatal(err)
	}
	cold := cl.Usage().TotalOps() - before
	if cold < 20 {
		t.Fatalf("cold query cost %d ops; expected a full scan", cold)
	}

	// Warm: every query class answers from the snapshot at zero cloud ops.
	before = cl.Usage().TotalOps()
	if refs, err := st.OutputsOf(ctx, "blast"); err != nil || len(refs) != 1 {
		t.Fatalf("warm OutputsOf = %v, %v", refs, err)
	}
	if _, err := st.DescendantsOfOutputs(ctx, "blast"); err != nil {
		t.Fatal(err)
	}
	if all, err := st.AllProvenance(ctx); err != nil || len(all) != 22 {
		t.Fatalf("warm AllProvenance = %d, %v", len(all), err)
	}
	if _, err := st.Dependents(ctx, blast.Ref.Object); err != nil {
		t.Fatal(err)
	}
	if warm := cl.Usage().TotalOps() - before; warm != 0 {
		t.Fatalf("warm queries cost %d cloud ops, want 0", warm)
	}
	stats := st.CacheStats()
	if stats.GraphMisses != 1 || stats.GraphHits < 3 {
		t.Fatalf("cache stats = %+v", stats)
	}
}

func TestWriteBetweenQueriesInvalidatesSnapshot(t *testing.T) {
	st, _ := newTestStore(t, nil)
	ctx := context.Background()
	blast := procEvent("blast", 1)
	out1 := fileEvent("/out1", 0, "a", prov.NewInput(prov.Ref{Object: "/out1"}, blast.Ref))
	for _, ev := range []pass.FlushEvent{blast, out1} {
		if err := core.Put(ctx, st, ev); err != nil {
			t.Fatal(err)
		}
	}
	refs, err := st.OutputsOf(ctx, "blast")
	if err != nil || len(refs) != 1 {
		t.Fatalf("OutputsOf = %v, %v", refs, err)
	}

	// A second output lands after the snapshot was taken.
	out2 := fileEvent("/out2", 0, "b", prov.NewInput(prov.Ref{Object: "/out2"}, blast.Ref))
	if err := core.Put(ctx, st, out2); err != nil {
		t.Fatal(err)
	}
	refs, err = st.OutputsOf(ctx, "blast")
	if err != nil || len(refs) != 2 {
		t.Fatalf("OutputsOf after write = %v, %v; stale snapshot served", refs, err)
	}
}

// ctxAfterChecks reports cancellation after its Err method has been
// consulted n times — deterministic mid-scan cancellation.
type ctxAfterChecks struct {
	context.Context
	mu sync.Mutex
	n  int
}

func (c *ctxAfterChecks) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n <= 0 {
		return context.Canceled
	}
	c.n--
	return nil
}

func TestScanCancellationHonoredPerObject(t *testing.T) {
	for name, conc := range map[string]int{"sequential": 1, "parallel": 4} {
		t.Run(name, func(t *testing.T) {
			cl := cloud.New(cloud.Config{Seed: 1})
			st, err := New(Config{Cloud: cl, ScanConcurrency: conc, DisableQueryCache: true})
			if err != nil {
				t.Fatal(err)
			}
			loadN(t, st, 40)

			// Budget of 6 Err checks: one for the LIST loop, the rest for
			// scan workers. The scan must stop long before 40 HEADs — the
			// old per-page check would have drained the whole page.
			cctx := &ctxAfterChecks{Context: context.Background(), n: 6}
			before := cl.Usage().OpCount(billing.S3, "HEAD")
			_, err = st.AllProvenance(cctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			heads := cl.Usage().OpCount(billing.S3, "HEAD") - before
			if heads > 6 {
				t.Fatalf("cancelled scan issued %d HEADs; cancellation not honored per object", heads)
			}
		})
	}
}

func TestParallelScanMatchesSequential(t *testing.T) {
	ctx := context.Background()
	var want map[prov.Ref][]prov.Record
	for _, conc := range []int{1, 8} {
		cl := cloud.New(cloud.Config{Seed: 1})
		st, err := New(Config{Cloud: cl, ScanConcurrency: conc, DisableQueryCache: true})
		if err != nil {
			t.Fatal(err)
		}
		blast := procEvent("blast", 1)
		if err := core.Put(ctx, st, blast); err != nil {
			t.Fatal(err)
		}
		loadN(t, st, 30)
		all, err := st.AllProvenance(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = all
			continue
		}
		if len(all) != len(want) {
			t.Fatalf("conc %d: %d subjects, want %d", conc, len(all), len(want))
		}
		for ref, records := range want {
			if len(all[ref]) != len(records) {
				t.Fatalf("conc %d: subject %v has %d records, want %d", conc, ref, len(all[ref]), len(records))
			}
		}
	}
}

// TestPagedScanMergesPieces: a subject whose records rode several carrier
// PUTs streams in pieces on the uncached scan; a paginated query must still
// return exactly one entry per ref — the no-duplicates cursor contract —
// with the pieces' records merged.
func TestPagedScanMergesPieces(t *testing.T) {
	cl := cloud.New(cloud.Config{Seed: 1})
	st, err := New(Config{Cloud: cl, DisableQueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	proc := prov.Ref{Object: "proc/1/tool", Version: 0}
	// Two batches: each carries one piece of the process's records on a
	// different file's PUT.
	batches := [][]pass.FlushEvent{
		{
			{Ref: proc, Type: prov.TypeProcess, Records: []prov.Record{
				prov.NewString(proc, prov.AttrType, prov.TypeProcess)}},
			fileEvent("/f1", 0, "one"),
		},
		{
			{Ref: proc, Type: prov.TypeProcess, Records: []prov.Record{
				prov.NewString(proc, prov.AttrName, "tool")}},
			fileEvent("/f2", 0, "two"),
		},
	}
	for _, b := range batches {
		if err := st.PutBatch(ctx, b); err != nil {
			t.Fatal(err)
		}
	}

	q := prov.Query{Limit: 1}
	seen := map[prov.Ref]int{}
	procRecords := 0
	for {
		cursor := ""
		for e, err := range st.Query(ctx, q) {
			if err != nil {
				t.Fatal(err)
			}
			seen[e.Ref]++
			if e.Ref == proc {
				procRecords = len(e.Records)
			}
			cursor = e.Cursor
		}
		if cursor == "" {
			break
		}
		q.Cursor = cursor
	}
	for ref, n := range seen {
		if n != 1 {
			t.Fatalf("paged scan returned ref %v %d times", ref, n)
		}
	}
	if procRecords != 2 {
		t.Fatalf("process entry carries %d records, want both pieces merged", procRecords)
	}
}
