// Arc migration for the S3-only architecture (core.Migrator). Carriers
// move whole: a matching data object exports its body plus every record
// its metadata carries — own records and transient riders alike, since
// this architecture stores riders inside the carrier PUT and they must
// keep homing with it. Import re-encodes each carrier natively
// (overflow and bundle objects re-mint under the destination's bucket)
// and the destination's own ledger commits the carrier leaves via the
// same rider mechanism a normal PUT uses; source checkpoints are never
// copied, so each shard stays single-writer. Removal deletes the moved
// carriers and their referenced spill objects, drops the ledger slots,
// and persists the post-removal commitment on a dedicated marker
// carrier — this architecture has no ledger item, checkpoints only ever
// ride data-prefixed metadata where Audit harvests them.
package s3only

import (
	"context"
	"fmt"
	"strings"

	"passcloud/internal/cloud/s3"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/prov"
)

// reshardMarker is the carrier that persists the post-removal checkpoint.
const reshardMarker = prov.ObjectID("/.reshard/checkpoint")

// arcCarrier is one exported data object: its body and the decoded
// records (own and foreign) its metadata carried.
type arcCarrier struct {
	ref     prov.Ref
	body    []byte
	own     []prov.Record
	foreign []prov.Record
}

// arcPayload is the architecture-specific half of a core.ArcExport.
type arcPayload struct {
	carriers []arcCarrier
}

// listData pages the data prefix and calls fn for every object whose ID
// matches the predicate, skipping the reshard marker (writer-local
// bookkeeping that never migrates).
func (s *Store) listData(ctx context.Context, match func(prov.ObjectID) bool, fn func(key string, object prov.ObjectID) error) error {
	marker := ""
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var page *s3.ListPage
		err := s.retrier.Do(ctx, "s3only/reshard-list", func() error {
			var lerr error
			page, lerr = s.cloud.S3.List(s.bucket, dataPrefix, marker, 0)
			return lerr
		})
		if err != nil {
			return err
		}
		for _, info := range page.Objects {
			object := prov.ObjectID(strings.TrimPrefix(info.Key, dataPrefix))
			if object == reshardMarker || !match(object) {
				continue
			}
			if err := fn(info.Key, object); err != nil {
				return err
			}
		}
		if !page.IsTruncated {
			return nil
		}
		marker = page.NextMarker
	}
}

// ExportArc implements core.Migrator.
func (s *Store) ExportArc(ctx context.Context, match func(prov.ObjectID) bool) (*core.ArcExport, error) {
	exp := &core.ArcExport{}
	payload := &arcPayload{}
	seen := make(map[prov.Ref]bool)
	err := s.listData(ctx, match, func(key string, object prov.ObjectID) error {
		var obj *s3.Object
		err := s.retrier.Do(ctx, "s3only/reshard-get", func() error {
			var gerr error
			obj, gerr = s.cloud.S3.Get(s.bucket, key)
			return gerr
		})
		if err != nil {
			return err
		}
		ref, records, err := s.decodeAll(object, obj.Metadata)
		if err != nil {
			return err
		}
		c := arcCarrier{ref: ref, body: obj.Body}
		for _, rec := range records {
			if rec.Subject == ref {
				c.own = append(c.own, rec)
			} else {
				c.foreign = append(c.foreign, rec)
			}
			if rec.Value.Kind == prov.KindString {
				exp.Bytes += int64(len(rec.Value.Str))
			}
			if !seen[rec.Subject] {
				seen[rec.Subject] = true
				exp.Subjects = append(exp.Subjects, rec.Subject)
			}
		}
		// The carrier subject itself is part of the arc even when all its
		// records rode elsewhere (a marker carrying only riders).
		if !seen[ref] {
			seen[ref] = true
			exp.Subjects = append(exp.Subjects, ref)
		}
		payload.carriers = append(payload.carriers, c)
		exp.Objects++
		exp.Bytes += int64(len(obj.Body))
		return nil
	})
	if err != nil {
		return nil, err
	}
	exp.Payload = payload
	return exp, nil
}

// ImportArc implements core.Migrator: each carrier re-encodes through
// the store's own metadata pipeline and lands with one PUT carrying
// data, provenance and this store's freshly minted checkpoint rider.
func (s *Store) ImportArc(ctx context.Context, exp *core.ArcExport) error {
	payload, ok := exp.Payload.(*arcPayload)
	if !ok {
		return fmt.Errorf("s3only: import of a foreign arc payload (%T)", exp.Payload)
	}
	defer s.gen.Bump()
	return s.tracker.Track(func() error {
		for _, c := range payload.carriers {
			key := dataKey(c.ref.Object)
			meta, gets, err := s.encodeMetadata(ctx, c.ref, c.own, c.foreign)
			if err != nil {
				return err
			}
			s.mintRider(key, c.ref, c.own, c.foreign, meta)
			if err := s.putCarrier(ctx, "s3only/reshard-put", key, c.body, meta); err != nil {
				return fmt.Errorf("s3only: reshard put: %w", err)
			}
			s.mu.Lock()
			if c.ref.Version > s.latest[key] {
				s.latest[key] = c.ref.Version
			}
			s.mu.Unlock()
			s.catalog.Observe(key, gets)
		}
		return nil
	})
}

// RemoveArc implements core.Migrator.
func (s *Store) RemoveArc(ctx context.Context, match func(prov.ObjectID) bool) (int, error) {
	removed := 0
	err := s.tracker.Track(func() error {
		type victim struct {
			key string
			ref prov.Ref
		}
		var victims []victim
		if err := s.listData(ctx, match, func(key string, object prov.ObjectID) error {
			var info *s3.Info
			err := s.retrier.Do(ctx, "s3only/reshard-head", func() error {
				var herr error
				info, herr = s.cloud.S3.Head(s.bucket, key)
				return herr
			})
			if err != nil {
				return nil // deleted between LIST and HEAD
			}
			ref, _, err := s.decodeAll(object, info.Metadata)
			if err != nil {
				return err
			}
			victims = append(victims, victim{key: key, ref: ref})
			return nil
		}); err != nil {
			return err
		}
		// Phantom slots: a ledger entry whose carrier is already gone (a
		// tampered-away object the LIST can no longer surface). The leaves
		// must still leave the commitment or the next audit flags a root
		// mismatch against records that no longer exist.
		var phantoms []string
		if s.ledger != nil {
			live := make(map[string]bool, len(victims))
			for _, v := range victims {
				live[v.key] = true
			}
			for _, slot := range s.ledger.Slots() {
				if !strings.HasPrefix(slot, dataPrefix) || live[slot] {
					continue
				}
				object := prov.ObjectID(strings.TrimPrefix(slot, dataPrefix))
				if object == reshardMarker || !match(object) {
					continue
				}
				phantoms = append(phantoms, slot)
			}
		}
		if len(victims) == 0 && len(phantoms) == 0 {
			return nil
		}
		defer s.gen.Bump()
		for _, v := range victims {
			// The carrier's overflow and bundle objects live under its
			// subject's prov/ prefix (foreign riders' spills included —
			// they encode under the carrier subject).
			if err := s.deletePrefix(ctx, fmt.Sprintf("%s/%s/", provPrefix, prov.EncodeItemName(v.ref))); err != nil {
				return err
			}
			err := s.retrier.Do(ctx, "s3only/reshard-delete", func() error {
				return s.cloud.S3.Delete(s.bucket, v.key)
			})
			if err != nil {
				return fmt.Errorf("s3only: reshard delete: %w", err)
			}
			if s.ledger != nil {
				s.ledger.Remove(v.key)
			}
			s.catalog.Forget(v.key)
			s.mu.Lock()
			delete(s.latest, v.key)
			s.mu.Unlock()
			removed++
		}
		for _, slot := range phantoms {
			s.ledger.Remove(slot)
			s.catalog.Forget(slot)
			s.mu.Lock()
			delete(s.latest, slot)
			s.mu.Unlock()
		}
		if s.ledger != nil {
			// Persist the post-removal commitment: without it, the highest
			// surviving rider still commits to the departed leaves and the
			// next audit would flag a root mismatch.
			meta := map[string]string{
				metaVersion:        "0",
				integrity.AttrRoot: s.ledger.Commit(nil).Token(),
			}
			key := dataKey(reshardMarker)
			if err := s.putCarrier(ctx, "s3only/reshard-ledger-put", key, []byte{'.'}, meta); err != nil {
				return fmt.Errorf("s3only: reshard ledger put: %w", err)
			}
			s.catalog.Observe(key, 0)
		}
		return nil
	})
	return removed, err
}

// deletePrefix removes every S3 object under prefix.
func (s *Store) deletePrefix(ctx context.Context, prefix string) error {
	marker := ""
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var page *s3.ListPage
		err := s.retrier.Do(ctx, "s3only/reshard-list", func() error {
			var lerr error
			page, lerr = s.cloud.S3.List(s.bucket, prefix, marker, 0)
			return lerr
		})
		if err != nil {
			return err
		}
		for _, info := range page.Objects {
			key := info.Key
			err := s.retrier.Do(ctx, "s3only/reshard-prefix-delete", func() error {
				return s.cloud.S3.Delete(s.bucket, key)
			})
			if err != nil {
				return err
			}
		}
		if !page.IsTruncated {
			return nil
		}
		marker = page.NextMarker
	}
}

var _ core.Migrator = (*Store)(nil)
