package s3only

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/retry"
	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

var tightRetry = retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Budget: 10 * time.Millisecond}

func fileEv(object string, version int, data string) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(object), Version: prov.Version(version)}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: []byte(data), Records: []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeFile),
		prov.NewString(ref, prov.AttrName, object),
	}}
}

func procEv(name string) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID("proc/1/" + name), Version: 0}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeProcess, Records: []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeProcess),
		prov.NewString(ref, prov.AttrName, name),
	}}
}

// TestPutBatchPartialFailureListsLandedEvents: a failed PUT mid-batch must
// surface a typed error naming the file versions that landed plus the
// transient riders their metadata carried.
func TestPutBatchPartialFailureListsLandedEvents(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 1, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults, PutConcurrency: 1, Retry: tightRetry})
	if err != nil {
		t.Fatal(err)
	}

	proc := procEv("tool")
	f1 := fileEv("/a", 0, "one") // carries the proc's records
	f2 := fileEv("/b", 0, "two")
	faults.ArmOp("s3/PUT", sim.ClassPermanent, 1, 1) // second data PUT fails

	err = st.PutBatch(ctx, []pass.FlushEvent{proc, f1, f2})
	if err == nil {
		t.Fatal("expected the injected fault to fail the batch")
	}
	var pw *core.PartialWriteError
	if !errors.As(err, &pw) {
		t.Fatalf("expected PartialWriteError, got %T: %v", err, err)
	}
	want := map[prov.Ref]bool{f1.Ref: true, proc.Ref: true}
	if len(pw.Landed) != len(want) {
		t.Fatalf("landed = %v, want first file + its rider", pw.Landed)
	}
	for _, ref := range pw.Landed {
		if !want[ref] {
			t.Errorf("unexpected landed ref %s", ref)
		}
	}
}

// TestPassRetriesOnlyUnlandedEvents proves the partial-batch recovery
// contract end to end: after a half-landed flush, the next Sync re-sends
// only the events that did not land — landed events are not replayed into
// the store (no duplicate records), unlanded events are not lost.
func TestPassRetriesOnlyUnlandedEvents(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 2, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults, PutConcurrency: 1, Retry: tightRetry})
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]prov.Ref
	flush := func(ctx context.Context, batch []pass.FlushEvent) error {
		refs := make([]prov.Ref, len(batch))
		for i, ev := range batch {
			refs[i] = ev.Ref
		}
		batches = append(batches, refs)
		return st.PutBatch(ctx, batch)
	}
	sys := pass.NewSystem(pass.Config{Flush: flush})

	if err := sys.Ingest(ctx, "/in", []byte("seed")); err != nil {
		t.Fatal(err)
	}
	p := sys.Exec(nil, pass.ExecSpec{Name: "worker"})
	if err := sys.Read(p, "/in"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write(p, "/mid", []byte("mid"), pass.Truncate); err != nil {
		t.Fatal(err)
	}
	// Reading /mid back freezes it and makes it an ancestor of /out, so
	// one Close coalesces both files into a single batch.
	if err := sys.Read(p, "/mid"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write(p, "/out", []byte("out"), pass.Truncate); err != nil {
		t.Fatal(err)
	}

	// /mid lands, /out's PUT fails: the close half-lands its batch. The
	// ingest PUT already consumed one check, so skip past it plus /mid.
	faults.ArmOp("s3/PUT", sim.ClassPermanent, 1, 1)
	if err := sys.Close(ctx, p, "/out"); err == nil {
		t.Fatal("expected the first close to fail")
	}
	firstLen := len(batches[len(batches)-1])
	if firstLen < 2 {
		t.Fatalf("first sync batch had %d events; want the whole chain", firstLen)
	}

	if err := sys.Sync(ctx); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	retryBatch := batches[len(batches)-1]
	if len(retryBatch) >= firstLen {
		t.Fatalf("retry re-sent %d of %d events; landed events must be excluded", len(retryBatch), firstLen)
	}
	for _, ref := range retryBatch {
		if ref.Object == "/mid" {
			t.Errorf("landed event %s was re-sent on retry", ref)
		}
	}

	cl.Settle()
	for path, want := range map[string]string{"/mid": "mid", "/out": "out"} {
		obj, err := st.Get(ctx, prov.ObjectID(path))
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		if string(obj.Data) != want {
			t.Errorf("%s = %q, want %q", path, obj.Data, want)
		}
	}
}

// TestStalePendingVersionCannotOverwriteNewerData: when a newer version
// lands while an older one stays pending (flush reordering across partial
// failures), the older version's retry must not regress the object.
func TestStalePendingVersionCannotOverwriteNewerData(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 3, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults, PutConcurrency: 1, Retry: tightRetry})
	if err != nil {
		t.Fatal(err)
	}

	v0 := fileEv("/f", 0, "old")
	v1 := fileEv("/f", 1, "new")
	// v0's batch fails outright; v1 then lands; v0 is retried after.
	faults.ArmOp("s3/PUT", sim.ClassPermanent, 0, 1)
	if err := core.Put(ctx, st, v0); err == nil {
		t.Fatal("expected v0's first flush to fail")
	}
	if err := core.Put(ctx, st, v1); err != nil {
		t.Fatal(err)
	}
	if err := core.Put(ctx, st, v0); err != nil {
		t.Fatalf("stale v0 retry should succeed as a no-op, got %v", err)
	}
	cl.Settle()
	obj, err := st.Get(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Ref.Version != 1 || string(obj.Data) != "new" {
		t.Fatalf("object regressed: v%d %q, want v1 %q", obj.Ref.Version, obj.Data, "new")
	}
}

// TestAckLossExhaustionCannotDoubleApplyRiders: when every retry of a
// carrier PUT suffers ack loss (applied, response lost) until the budget
// exhausts, the landed-probe must recognize the write as durable — without
// it, the buffered rider records would be restored and re-carried under a
// different key, duplicating provenance.
func TestAckLossExhaustionCannotDoubleApplyRiders(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 6, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults, PutConcurrency: 1, Retry: tightRetry})
	if err != nil {
		t.Fatal(err)
	}
	proc := procEv("rider")
	f := fileEv("/carrier", 0, "payload")
	// Both attempts (MaxAttempts = 2) lose their response after applying.
	faults.ArmOp("s3/PUT", sim.ClassAckLoss, 0, 2)
	if err := st.PutBatch(ctx, []pass.FlushEvent{proc, f}); err != nil {
		t.Fatalf("the landed-probe should settle the ambiguous exhaustion: %v", err)
	}
	// A later flush must not re-carry the rider's records.
	if err := core.Put(ctx, st, fileEv("/next", 0, "x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	cl.Settle()
	all, err := core.AllProvenance(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	riderRecords := 0
	for ref, records := range all {
		if ref == proc.Ref {
			riderRecords += len(records)
		}
	}
	if riderRecords != len(proc.Records) {
		t.Fatalf("rider has %d records, want %d (double-applied)", riderRecords, len(proc.Records))
	}
}

// TestSyncRestoresBufferedProvenanceOnFailure: a failed pnode-marker PUT
// must put the buffered trailing records back so a later Sync persists
// them instead of silently dropping provenance.
func TestSyncRestoresBufferedProvenanceOnFailure(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 4, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults, PutConcurrency: 1, Retry: tightRetry})
	if err != nil {
		t.Fatal(err)
	}
	// Buffer a transient event with no carrier, then fail the marker PUT.
	if err := core.Put(ctx, st, procEv("straggler")); err != nil {
		t.Fatal(err)
	}
	faults.ArmOp("s3/PUT", sim.ClassPermanent, 0, 1)
	if err := st.Sync(ctx); err == nil {
		t.Fatal("expected the first sync to fail")
	}
	if err := st.Sync(ctx); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	cl.Settle()
	all, err := core.AllProvenance(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for ref := range all {
		if ref.Object == "proc/1/straggler" {
			found = true
		}
	}
	if !found {
		t.Fatalf("straggler provenance lost after failed sync; subjects: %v", fmt.Sprint(len(all)))
	}
}
