package integrity_test

// Randomized partial-write × hash-chain coverage: when a flush half-lands
// (core.PartialWriteError) and pass.System retries only the remainder, the
// retried events must EXTEND the chain that was being written, not fork
// it — each version still ends up with exactly one chain record, linked to
// the true predecessor, and the committed root still matches. This is the
// interaction the chain memoization in pass.System exists for: the record
// set (chain record included) is frozen at first flush, so a retry
// re-sends byte-identical events.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/retry"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// fastRetry keeps the simulated runs quick while still allowing
// multi-attempt recovery within a fault window.
var fastRetry = retry.Policy{
	MaxAttempts: 4,
	BaseDelay:   10 * time.Millisecond,
	MaxDelay:    100 * time.Millisecond,
	Budget:      2 * time.Second,
}

// retryEnv is one architecture wired with fault injection for the test.
type retryEnv struct {
	cloud  *cloud.Cloud
	store  core.Store
	faults *sim.FaultPlan
	// writeOps are the service ops the fault schedule targets.
	writeOps []string
	// crashPoint, when non-empty, is a protocol point whose injected
	// crash yields a half-landed batch (the WAL's sealed-transaction
	// shape).
	crashPoint string
	// pump drains the WAL on the daemon architecture; nil elsewhere.
	pump func(ctx context.Context) error
}

func buildRetryEnv(t *testing.T, arch string, seed int64) *retryEnv {
	t.Helper()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: seed, MaxDelay: time.Second, Faults: faults})
	e := &retryEnv{cloud: cl, faults: faults}
	switch arch {
	case "s3":
		st, err := s3only.New(s3only.Config{Cloud: cl, Faults: faults, PutConcurrency: 1, ScanConcurrency: 1, Retry: fastRetry})
		if err != nil {
			t.Fatal(err)
		}
		e.store = st
		e.writeOps = []string{"s3/PUT"}
	case "s3+sdb":
		st, err := s3sdb.New(s3sdb.Config{Cloud: cl, Faults: faults, Retry: fastRetry})
		if err != nil {
			t.Fatal(err)
		}
		e.store = st
		e.writeOps = []string{"s3/PUT", "sdb/PutAttributes", "sdb/BatchPutAttributes"}
	case "s3+sdb+sqs":
		st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl, Faults: faults, Retry: fastRetry})
		if err != nil {
			t.Fatal(err)
		}
		e.store = st
		e.writeOps = []string{"s3/PUT", "sqs/SendMessage"}
		e.crashPoint = "wal/after-commit"
		e.pump = func(ctx context.Context) error {
			for round := 0; round < 20; round++ {
				d := s3sdbsqs.NewCommitDaemon(st, faults)
				d.Visibility = 10 * time.Second
				n, err := d.RunOnce(ctx, true)
				cl.Clock.Advance(11 * time.Second)
				cl.Settle()
				if err != nil {
					continue
				}
				if n == 0 {
					return nil
				}
			}
			return errors.New("WAL did not drain")
		}
	default:
		t.Fatalf("unknown arch %q", arch)
	}
	return e
}

// TestPartialRetryExtendsChain drives multi-version, multi-file rounds
// through each architecture while randomized transient and ack-loss fault
// windows force flush failures — including half-landed batches — then
// asserts the converged store verifies completely clean: every version
// carries exactly one chain record linking to its true predecessor, and
// the committed checkpoint root matches the stored state. A forked chain
// (a retry re-hashing already-landed events) would surface as a
// chain-break or root-mismatch.
func TestPartialRetryExtendsChain(t *testing.T) {
	const rounds = 4
	const files = 3
	ctx := context.Background()
	for _, arch := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
		for _, seed := range []int64{3, 11} {
			t.Run(fmt.Sprintf("%s/seed%d", arch, seed), func(t *testing.T) {
				e := buildRetryEnv(t, arch, seed)
				rng := sim.NewRNG(seed * 1000003)

				flushErrs, partials := 0, 0
				inner := core.Flusher(e.store)
				sys := pass.NewSystem(pass.Config{Flush: func(ctx context.Context, batch []pass.FlushEvent) error {
					err := inner(ctx, batch)
					if err != nil {
						flushErrs++
						var pw *core.PartialWriteError
						if errors.As(err, &pw) {
							partials++
						}
					}
					return err
				}})

				for r := 0; r < rounds; r++ {
					// Each round arms one failure scenario: either a
					// fail-fast permanent error on a mid-batch PUT after
					// the first landed (the canonical half-landed shape:
					// the retrier does not mask it, so the flush reports
					// the landed prefix), or a transient window long enough
					// to exhaust the retry policy. Plus an occasional
					// ack-loss on top.
					if e.crashPoint == "" && rng.Intn(2) == 0 {
						e.faults.ArmOp("s3/PUT", sim.ClassPermanent, 1+rng.Intn(2), 1)
					} else {
						op := e.writeOps[rng.Intn(len(e.writeOps))]
						e.faults.ArmOp(op, sim.ClassTransient, rng.Intn(3), fastRetry.MaxAttempts+rng.Intn(3))
					}
					if rng.Intn(2) == 0 {
						e.faults.ArmOp(e.writeOps[rng.Intn(len(e.writeOps))], sim.ClassAckLoss, rng.Intn(2), 1+rng.Intn(2))
					}
					if e.crashPoint != "" && rng.Intn(2) == 0 {
						// A crash after the WAL commit record is queued is
						// the half-landed shape on this architecture: the
						// transaction will commit, so the whole batch is
						// reported landed and must not be re-logged.
						e.faults.ArmAfter(e.crashPoint, 0)
					}

					p := sys.Exec(nil, pass.ExecSpec{Name: fmt.Sprintf("tool%d", r)})
					for k := 0; k < files; k++ {
						path := fmt.Sprintf("/f%d", k)
						if r > 0 {
							if err := sys.Read(p, path); err != nil {
								t.Fatal(err)
							}
						}
						if err := sys.Write(p, path, []byte(fmt.Sprintf("round%d-%d", r, k)), pass.Truncate); err != nil {
							t.Fatal(err)
						}
					}
					// No Close: each round's reads freeze the previous
					// round's versions, so Sync flushes them as ONE
					// causally ordered multi-event batch — the shape that
					// can half-land.
					synced := false
					for attempt := 0; attempt < 10; attempt++ {
						if err := sys.Sync(ctx); err != nil {
							e.cloud.Settle()
							continue
						}
						synced = true
						break
					}
					if !synced {
						t.Fatalf("round %d never converged", r)
					}
				}
				// A final reader freezes the last round's versions so they
				// flush too (no faults are armed by now).
				reader := sys.Exec(nil, pass.ExecSpec{Name: "reader"})
				for k := 0; k < files; k++ {
					if err := sys.Read(reader, fmt.Sprintf("/f%d", k)); err != nil {
						t.Fatal(err)
					}
				}
				finalSynced := false
				for attempt := 0; attempt < 10; attempt++ {
					if err := sys.Sync(ctx); err != nil {
						e.cloud.Settle()
						continue
					}
					finalSynced = true
					break
				}
				if !finalSynced {
					t.Fatal("final sync never converged")
				}
				if err := core.SyncStore(ctx, e.store); err != nil {
					if err := core.SyncStore(ctx, e.store); err != nil {
						t.Fatalf("store sync: %v", err)
					}
				}
				if e.pump != nil {
					if err := e.pump(ctx); err != nil {
						t.Fatal(err)
					}
				}
				e.cloud.Settle()

				if flushErrs == 0 {
					t.Fatal("no flush ever failed; the retry path was not exercised")
				}
				if partials == 0 {
					t.Fatalf("no half-landed batch occurred (%d flush errors); partial-write retry was not exercised", flushErrs)
				}

				auditor, ok := e.store.(integrity.Auditor)
				if !ok {
					t.Fatal("store is not auditable")
				}
				a, err := auditor.Audit(ctx)
				if err != nil {
					t.Fatal(err)
				}
				res := integrity.VerifyAudit(a)
				for _, d := range res.Divergences {
					t.Errorf("retried chain diverged: %s", d)
				}
				if a.RetainsHistory {
					// Every file must hold its full version history, each
					// version chained: the retried remainders extended the
					// chain instead of forking it.
					for k := 0; k < files; k++ {
						object := prov.ObjectID(fmt.Sprintf("/f%d", k))
						got := 0
						for ref := range a.Entries {
							if ref.Object == object {
								got++
							}
						}
						if got != rounds {
							t.Errorf("%s: %d versions stored, want %d", object, got, rounds)
						}
					}
				}
			})
		}
	}
}
