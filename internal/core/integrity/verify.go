package integrity

import (
	"context"
	"fmt"
	"sort"

	"passcloud/internal/prov"
)

// Auditor is the store-side hook verification runs on: a full dump of the
// committed provenance (decoded records, one entry per subject) together
// with every persisted checkpoint rider the scan encountered. All three
// architecture stores and the SimpleDB provenance layer implement it.
type Auditor interface {
	Audit(ctx context.Context) (*Audit, error)
}

// Audit is one store's verifiable state, as scanned.
type Audit struct {
	// Shard is the store's shard index (0 when unsharded); verification
	// stamps it into every divergence.
	Shard int
	// Entries maps each stored subject to its decoded records.
	Entries map[prov.Ref][]prov.Record
	// Checkpoints are the persisted checkpoint riders, in scan order.
	// Duplicates are expected (one rider per item/object).
	Checkpoints []Checkpoint
	// RetainsHistory reports whether the store keeps every version's
	// records (the SimpleDB designs) or only the latest per S3 key (the
	// S3-only design, whose metadata is overwritten in place). Without
	// history, a missing predecessor is a fact of the architecture, not a
	// divergence.
	RetainsHistory bool

	// pred is the predecessor-lookup map when chains span stores: a
	// transient ancestor's versions ride the file flushes that trigger
	// them, which may home on different shards, so a link's predecessor
	// can legitimately live on another shard. nil means Entries.
	pred map[prov.Ref][]prov.Record
}

// predecessors resolves a chain link's predecessor record set.
func (a *Audit) predecessors(ref prov.Ref) ([]prov.Record, bool) {
	if a.pred != nil {
		r, ok := a.pred[ref]
		return r, ok
	}
	r, ok := a.Entries[ref]
	return r, ok
}

// DivergenceKind classifies what verification found.
type DivergenceKind int

// The divergence kinds VerifyAudit reports.
const (
	// ChainBreak: a version's chain token does not match its
	// predecessor's re-derived subject hash — some record of the
	// predecessor (or the token itself) was altered.
	ChainBreak DivergenceKind = iota
	// ChainGap: a version links to a predecessor the store no longer
	// holds, on an architecture that retains history — the predecessor's
	// records were dropped post-commit.
	ChainGap
	// ChainMissing: a stored version carries no chain record at all —
	// the chain record itself was dropped.
	ChainMissing
	// RootMismatch: the Merkle root re-derived from every stored record
	// differs from the writer's highest committed checkpoint — some
	// record in the shard was altered, added or dropped.
	RootMismatch
	// CheckpointMissing: the store holds records but no checkpoint rider
	// survived — the commitments themselves were stripped.
	CheckpointMissing
)

// String names the kind for reports.
func (k DivergenceKind) String() string {
	switch k {
	case ChainBreak:
		return "chain-break"
	case ChainGap:
		return "chain-gap"
	case ChainMissing:
		return "chain-missing"
	case RootMismatch:
		return "root-mismatch"
	case CheckpointMissing:
		return "checkpoint-missing"
	default:
		return fmt.Sprintf("DivergenceKind(%d)", int(k))
	}
}

// Divergence is one verification finding: which record diverged, on which
// shard, and how.
type Divergence struct {
	Kind  DivergenceKind
	Shard int
	// Subject is the object version the finding is anchored to (zero for
	// shard-level findings: RootMismatch, CheckpointMissing).
	Subject prov.Ref
	// Detail explains the finding (expected vs. derived values).
	Detail string
}

// String renders one finding.
func (d Divergence) String() string {
	if d.Subject == (prov.Ref{}) {
		return fmt.Sprintf("shard %d: %s: %s", d.Shard, d.Kind, d.Detail)
	}
	return fmt.Sprintf("shard %d: %s: %s: %s", d.Shard, d.Kind, d.Subject, d.Detail)
}

// ShardResult is one shard's verification outcome.
type ShardResult struct {
	Shard int
	// Subjects and Records count what was scanned.
	Subjects, Records int
	// Root is the Merkle root re-derived from the stored records.
	Root string
	// Checkpoint is the writer's highest committed checkpoint (zero when
	// none survived or writers were multiple).
	Checkpoint Checkpoint
	// MultiWriter reports that more than one writer's checkpoints were
	// found; the root comparison is skipped (each writer commits only to
	// its own writes — see ARCHITECTURE.md), chain checks still run.
	MultiWriter bool
	// Detached counts chain links that could not be verified because the
	// writer attached the object mid-history (informational, not a
	// divergence).
	Detached int
	// Divergences are the findings, subject-sorted.
	Divergences []Divergence
}

// Clean reports a divergence-free shard.
func (r *ShardResult) Clean() bool { return len(r.Divergences) == 0 }

// VerifyAudit re-derives every subject hash and the Merkle root from a
// store's scanned state and returns the shard's result: chain checks per
// object version, then the root check against the highest surviving
// checkpoint.
func VerifyAudit(a *Audit) *ShardResult {
	for ref, records := range a.Entries {
		a.Entries[ref] = DedupRecords(records)
	}
	res := &ShardResult{Shard: a.Shard, Subjects: len(a.Entries)}
	res.Divergences = append(res.Divergences, verifyChains(a, &res.Detached)...)

	leaves := make([]string, 0, len(a.Entries))
	for ref, records := range a.Entries {
		res.Records += len(records)
		leaves = append(leaves, SubjectHash(ref, records))
	}
	res.Root = MerkleRoot(leaves)

	cp, multi, ok := latestCheckpoint(a.Checkpoints)
	res.MultiWriter = multi
	switch {
	case !ok:
		if len(a.Entries) > 0 {
			res.Divergences = append(res.Divergences, Divergence{
				Kind: CheckpointMissing, Shard: a.Shard,
				Detail: fmt.Sprintf("%d subjects stored but no checkpoint rider found", len(a.Entries)),
			})
		}
	case multi:
		// Several writers committed here; each root covers only its own
		// writes, so no single checkpoint matches the union. Chain checks
		// above still hold every record accountable to its predecessor.
	default:
		res.Checkpoint = cp
		if cp.Root != res.Root {
			res.Divergences = append(res.Divergences, Divergence{
				Kind: RootMismatch, Shard: a.Shard,
				Detail: fmt.Sprintf("committed root %s (seq %d, %d subjects) != derived root %s (%d subjects)",
					cp.Root, cp.Seq, cp.Count, res.Root, len(leaves)),
			})
		}
	}
	sortDivergences(res.Divergences)
	return res
}

// verifyChains walks every object's version history present in the audit
// and checks each chain link.
func verifyChains(a *Audit, detached *int) []Divergence {
	byObject := make(map[prov.ObjectID][]prov.Ref)
	for ref := range a.Entries {
		byObject[ref.Object] = append(byObject[ref.Object], ref)
	}
	var out []Divergence
	for _, refs := range byObject {
		sort.Slice(refs, func(i, j int) bool { return refs[i].Version < refs[j].Version })
		for _, ref := range refs {
			out = append(out, verifyLink(a, ref, detached)...)
		}
	}
	return out
}

// verifyLink checks one version's chain record against its predecessor.
func verifyLink(a *Audit, ref prov.Ref, detached *int) []Divergence {
	var tokens []string
	for _, r := range a.Entries[ref] {
		if r.Attr == AttrChain {
			tokens = append(tokens, r.Value.String())
		}
	}
	switch {
	case len(tokens) == 0:
		return []Divergence{{Kind: ChainMissing, Shard: a.Shard, Subject: ref,
			Detail: "no chain record in stored record set"}}
	case len(tokens) > 1:
		sort.Strings(tokens)
		return []Divergence{{Kind: ChainBreak, Shard: a.Shard, Subject: ref,
			Detail: fmt.Sprintf("%d chain records stored (want exactly one): %v", len(tokens), tokens)}}
	}
	token := tokens[0]
	if token == TokenDetached {
		if detached != nil {
			*detached++
		}
		return nil
	}
	if ref.Version == 0 {
		if token != TokenGenesis {
			return []Divergence{{Kind: ChainBreak, Shard: a.Shard, Subject: ref,
				Detail: fmt.Sprintf("version 0 carries chain token %q (want %q)", token, TokenGenesis)}}
		}
		return nil
	}
	want, ok := ParseLink(token)
	if !ok {
		return []Divergence{{Kind: ChainBreak, Shard: a.Shard, Subject: ref,
			Detail: fmt.Sprintf("malformed chain token %q", token)}}
	}
	prev := prov.Ref{Object: ref.Object, Version: ref.Version - 1}
	prevRecords, present := a.predecessors(prev)
	if !present {
		if a.RetainsHistory {
			return []Divergence{{Kind: ChainGap, Shard: a.Shard, Subject: ref,
				Detail: fmt.Sprintf("links to %s, which the store no longer holds", prev)}}
		}
		// The S3-only design overwrites an object's metadata in place, so
		// superseded file versions legitimately vanish; the surviving
		// version's own hash is still pinned by the root commitment.
		return nil
	}
	if got := SubjectHash(prev, prevRecords); got != want {
		return []Divergence{{Kind: ChainBreak, Shard: a.Shard, Subject: ref,
			Detail: fmt.Sprintf("links to %s with hash %s, but stored records hash to %s", prev, want, got)}}
	}
	return nil
}

// latestCheckpoint picks each writer's highest-Seq checkpoint and reports
// whether more than one writer committed. With exactly one writer its
// final checkpoint is returned.
func latestCheckpoint(cps []Checkpoint) (cp Checkpoint, multi, ok bool) {
	latest := make(map[string]Checkpoint)
	for _, c := range cps {
		if have, seen := latest[c.Writer]; !seen || c.Seq > have.Seq {
			latest[c.Writer] = c
		}
	}
	if len(latest) == 0 {
		return Checkpoint{}, false, false
	}
	if len(latest) > 1 {
		return Checkpoint{}, true, true
	}
	for _, c := range latest {
		return c, false, true
	}
	panic("unreachable")
}

// sortDivergences orders findings deterministically: by subject, then kind.
func sortDivergences(ds []Divergence) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Subject != b.Subject {
			if a.Subject.Object != b.Subject.Object {
				return a.Subject.Object < b.Subject.Object
			}
			return a.Subject.Version < b.Subject.Version
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Detail < b.Detail
	})
}

// Result is a whole namespace's verification outcome: every shard's
// result plus the composed namespace root.
type Result struct {
	Shards []*ShardResult
	// NamespaceRoot composes the per-shard derived roots in shard order.
	NamespaceRoot string
}

// Clean reports a fully divergence-free namespace.
func (r *Result) Clean() bool {
	for _, s := range r.Shards {
		if !s.Clean() {
			return false
		}
	}
	return true
}

// Divergences flattens every shard's findings.
func (r *Result) Divergences() []Divergence {
	var out []Divergence
	for _, s := range r.Shards {
		out = append(out, s.Divergences...)
	}
	return out
}

// VerifyStores audits and verifies each store as one shard (index =
// position) and composes the namespace root. With more than one shard,
// chain links resolve predecessors through the union of every shard's
// entries — each shard's root still covers exactly its own entries —
// because transient ancestors home with the file flush that triggered
// them, which can place adjacent versions of one process on different
// shards.
func VerifyStores(ctx context.Context, stores []Auditor) (*Result, error) {
	res := &Result{}
	audits := make([]*Audit, len(stores))
	for i, st := range stores {
		a, err := st.Audit(ctx)
		if err != nil {
			return nil, fmt.Errorf("integrity: audit shard %d: %w", i, err)
		}
		a.Shard = i
		audits[i] = a
	}
	var union map[prov.Ref][]prov.Record
	if len(audits) > 1 {
		union = make(map[prov.Ref][]prov.Record)
		for _, a := range audits {
			for ref, records := range a.Entries {
				union[ref] = append(union[ref], records...)
			}
		}
	}
	roots := make([]string, 0, len(audits))
	for _, a := range audits {
		a.pred = union
		sr := VerifyAudit(a)
		res.Shards = append(res.Shards, sr)
		roots = append(roots, sr.Root)
	}
	res.NamespaceRoot = ComposeRoots(roots)
	return res, nil
}

// VerifyObject checks one object's chain through the given entries (its
// stored versions) — the VerifyLineage core, shared with the audit path.
func VerifyObject(object prov.ObjectID, entries map[prov.Ref][]prov.Record, retainsHistory bool, shard int) ([]Divergence, int) {
	sub := make(map[prov.Ref][]prov.Record)
	for ref, records := range entries {
		if ref.Object == object {
			sub[ref] = DedupRecords(records)
		}
	}
	detached := 0
	a := &Audit{Shard: shard, Entries: sub, RetainsHistory: retainsHistory}
	ds := verifyChains(a, &detached)
	sortDivergences(ds)
	return ds, detached
}
