// Package integrity makes stored provenance tamper-evident: every object
// version's record set is hash-chained to its predecessor at write time,
// and every store rolls a cheap Merkle commitment (one small root) over
// the record sets it has committed, so an auditor can re-derive the root
// from the stored records and detect any post-commit alteration — a
// flipped byte, a swapped version, a silently dropped record.
//
// The design rides entirely on writes the architectures already perform:
//
//   - The chain is an ordinary provenance record (attribute "x-chain")
//     appended to each version's record set by the PASS layer before
//     flush. Its value embeds the subject hash of the predecessor
//     version's full record set, so rewriting any historical record
//     breaks every later link. The value is memoized per version, so WAL
//     replay and partial-batch retry re-flush byte-identical records —
//     the chain extends, never forks, and nothing is hashed twice.
//
//   - The commitment is a Merkle root over per-subject leaf hashes,
//     tracked by a Ledger the storage layer advances at its true commit
//     point (the SimpleDB batch write, the WAL commit, the S3 PUT). Each
//     committed checkpoint rides as an extra attribute ("x-root") on an
//     item or metadata key the write was sending anyway — zero
//     additional cloud operations on the healthy write path.
//
// Verification (VerifyAudit, driving Client.VerifyLineage/VerifyAll)
// re-derives every subject hash and the root from the stored records and
// reports typed divergences: chain breaks and gaps name the subject,
// root mismatches name the shard.
package integrity

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"passcloud/internal/prov"
)

// Reserved names the integrity subsystem adds to stored forms.
const (
	// AttrChain is the chain record's attribute name. Chain records are
	// ordinary provenance records — they ride every encoding, WAL message
	// and query path unchanged — whose value is a chain token.
	AttrChain = "x-chain"
	// AttrRoot is the checkpoint rider: a SimpleDB attribute or S3
	// metadata key (never a provenance record) holding a checkpoint
	// token. Decoders skip it like the other protocol attributes.
	AttrRoot = "x-root"
)

// Chain token forms.
const (
	// TokenGenesis marks version 0 of an object: no predecessor.
	TokenGenesis = "genesis"
	// TokenDetached marks a version whose writer did not know its
	// predecessor's record set (the object was attached from another
	// client's history). The link is unverifiable, not divergent.
	TokenDetached = "detached"
	// tokenLinkPrefix prefixes an embedded predecessor subject hash.
	tokenLinkPrefix = "h:"
)

// hashHexLen truncates subject hashes and roots to 128 bits (32 hex
// characters): strong enough for tamper evidence, small enough that chain
// records and checkpoint riders never push a write over the S3 metadata
// or SQS message budgets the architectures pack against.
const hashHexLen = 32

// LinkToken renders the chain token embedding a predecessor's subject hash.
func LinkToken(prevHash string) string { return tokenLinkPrefix + prevHash }

// ParseLink extracts the embedded predecessor hash from a link token.
func ParseLink(token string) (string, bool) {
	if strings.HasPrefix(token, tokenLinkPrefix) {
		return token[len(tokenLinkPrefix):], true
	}
	return "", false
}

// ChainRecord builds the chain record flushed with a version's record set.
func ChainRecord(subject prov.Ref, token string) prov.Record {
	return prov.Record{Subject: subject, Attr: AttrChain, Value: prov.StringValue(token)}
}

// SubjectHash canonically hashes one version's full record set (the chain
// record included): sorted, deduplicated attribute/value lines under the
// subject reference. Deduplication mirrors SimpleDB's set semantics, so a
// record set replayed through any architecture hashes identically, and
// sorting makes the hash independent of flush or scan order. The hash
// doubles as the subject's Merkle leaf.
func SubjectHash(subject prov.Ref, records []prov.Record) string {
	lines := make([]string, 0, len(records))
	for _, r := range records {
		if r.Attr == AttrRoot { // defensive: riders are not records
			continue
		}
		lines = append(lines, r.Attr+"\x1f"+r.Value.String())
	}
	sort.Strings(lines)
	h := sha256.New()
	h.Write([]byte(subject.String()))
	h.Write([]byte{'\n'})
	prev := ""
	first := true
	for _, l := range lines {
		if !first && l == prev {
			continue
		}
		first, prev = false, l
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:hashHexLen]
}

// DedupRecords drops exact duplicate records, preserving first-appearance
// order. A store that replicates a subject's records across carriers (the
// S3-only design re-sends rider copies after a whole-batch replay) unions
// them to duplicates in an audit; identical copies are not divergences. A
// copy altered in any byte is NOT merged away and the chain and root
// checks catch it.
func DedupRecords(records []prov.Record) []prov.Record {
	seen := make(map[prov.Record]bool, len(records))
	out := records[:0:0]
	for _, r := range records {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// MerkleRoot folds a set of subject leaves into one commitment root:
// leaves are sorted and deduplicated (set semantics again), then reduced
// pairwise. The empty set has the distinguished root "empty".
func MerkleRoot(leaves []string) string {
	if len(leaves) == 0 {
		return "empty"
	}
	level := append([]string(nil), leaves...)
	sort.Strings(level)
	level = dedupSorted(level)
	for len(level) > 1 {
		next := make([]string, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			h := sha256.Sum256([]byte(level[i] + level[i+1]))
			next = append(next, hex.EncodeToString(h[:])[:hashHexLen])
		}
		level = next
	}
	return level[0]
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// ComposeRoots folds per-shard roots into the single namespace root the
// router exposes: shard order is part of the commitment (shard i's root in
// position i), so swapping two shards' stores is itself a divergence.
func ComposeRoots(roots []string) string {
	h := sha256.New()
	for i, r := range roots {
		fmt.Fprintf(h, "%d:%s\n", i, r)
	}
	return hex.EncodeToString(h.Sum(nil))[:hashHexLen]
}

// Checkpoint is one committed ledger state: after the writer's Seq-th
// commit, the store's subject leaves rolled to Root over Count subjects.
type Checkpoint struct {
	// Writer identifies the client whose ledger minted the checkpoint.
	Writer string
	// Seq orders a writer's checkpoints; the highest is the final state.
	Seq int
	// Count is the number of distinct subject leaves under Root.
	Count int
	// Root is the Merkle root at mint time.
	Root string
}

// Token renders the stored form: "v1|writer|seq|count|root".
func (c Checkpoint) Token() string {
	return fmt.Sprintf("v1|%s|%d|%d|%s", c.Writer, c.Seq, c.Count, c.Root)
}

// ParseCheckpoint reverses Token. Writers may contain '|' only if they
// enjoy corrupt verification reports, so they must not.
func ParseCheckpoint(token string) (Checkpoint, error) {
	parts := strings.Split(token, "|")
	if len(parts) != 5 || parts[0] != "v1" {
		return Checkpoint{}, fmt.Errorf("integrity: malformed checkpoint token %q", token)
	}
	seq, err := strconv.Atoi(parts[2])
	if err != nil || seq < 0 {
		return Checkpoint{}, fmt.Errorf("integrity: malformed checkpoint seq in %q", token)
	}
	count, err := strconv.Atoi(parts[3])
	if err != nil || count < 0 {
		return Checkpoint{}, fmt.Errorf("integrity: malformed checkpoint count in %q", token)
	}
	return Checkpoint{Writer: parts[1], Seq: seq, Count: count, Root: parts[4]}, nil
}

// Ledger tracks one writer's committed subject leaves, keyed by storage
// slot — the unit the store overwrites atomically (a SimpleDB item, an S3
// object's metadata). Re-committing a slot replaces its leaves, which
// makes the ledger idempotent under WAL replay, ack-loss retry and
// partial-batch re-flush: the same slot re-committed with the same
// records converges to the same state, and an S3 metadata overwrite that
// supersedes an older version's records supersedes its leaves too.
//
// Ledger is safe for concurrent use.
type Ledger struct {
	mu     sync.Mutex
	writer string
	seq    int
	slots  map[string][]string
	nleaf  int
}

// NewLedger builds an empty ledger for the named writer.
func NewLedger(writer string) *Ledger {
	if writer == "" {
		writer = "w"
	}
	return &Ledger{writer: writer, slots: make(map[string][]string)}
}

// Commit replaces the given slots' leaves and mints the next checkpoint
// over the whole ledger. One Commit covers one durable store write (one
// batch, one PUT), so the checkpoint riding that write commits to
// everything written up to and including it.
func (l *Ledger) Commit(slots map[string][]string) Checkpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	for slot, leaves := range slots {
		if prev, ok := l.slots[slot]; ok {
			l.nleaf -= len(prev)
		}
		if len(leaves) == 0 {
			delete(l.slots, slot)
			continue
		}
		cp := append([]string(nil), leaves...)
		l.slots[slot] = cp
		l.nleaf += len(cp)
	}
	l.seq++
	return l.checkpointLocked()
}

// Remove drops a slot (a deleted item or object) without minting a
// checkpoint; the next Commit's checkpoint covers the removal.
func (l *Ledger) Remove(slot string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.slots[slot]; ok {
		l.nleaf -= len(prev)
		delete(l.slots, slot)
	}
}

// Slots lists the ledger's live slot keys. Removal paths use it to find
// slots whose stored carrier has vanished (a tampered-away object no
// listing can surface) so the commitment can still follow the departure.
func (l *Ledger) Slots() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.slots))
	for slot := range l.slots {
		out = append(out, slot)
	}
	sort.Strings(out)
	return out
}

// Checkpoint reports the current state without advancing Seq.
func (l *Ledger) Checkpoint() Checkpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpointLocked()
}

func (l *Ledger) checkpointLocked() Checkpoint {
	leaves := make([]string, 0, l.nleaf)
	for _, ls := range l.slots {
		leaves = append(leaves, ls...)
	}
	root := MerkleRoot(leaves)
	// Count distinct leaves, matching MerkleRoot's set semantics.
	sort.Strings(leaves)
	leaves = dedupSorted(leaves)
	return Checkpoint{Writer: l.writer, Seq: l.seq, Count: len(leaves), Root: root}
}
