package integrity

import (
	"strings"
	"testing"

	"passcloud/internal/prov"
)

func ref(obj string, v int) prov.Ref {
	return prov.Ref{Object: prov.ObjectID(obj), Version: prov.Version(v)}
}

func rec(subject prov.Ref, attr, value string) prov.Record {
	return prov.Record{Subject: subject, Attr: attr, Value: prov.StringValue(value)}
}

// chainSet builds a healthy chained history of n versions of obj.
func chainSet(t *testing.T, obj string, n int) map[prov.Ref][]prov.Record {
	t.Helper()
	entries := make(map[prov.Ref][]prov.Record)
	prevHash := ""
	for v := 0; v < n; v++ {
		r := ref(obj, v)
		token := TokenGenesis
		if v > 0 {
			token = LinkToken(prevHash)
		}
		records := []prov.Record{
			rec(r, prov.AttrType, prov.TypeFile),
			rec(r, prov.AttrName, obj),
			ChainRecord(r, token),
		}
		entries[r] = records
		prevHash = SubjectHash(r, records)
	}
	return entries
}

func TestSubjectHashOrderAndDuplicateInvariance(t *testing.T) {
	r := ref("/a", 0)
	a := []prov.Record{rec(r, "type", "file"), rec(r, "name", "/a"), rec(r, "input", "/b:0")}
	b := []prov.Record{rec(r, "input", "/b:0"), rec(r, "name", "/a"), rec(r, "type", "file"), rec(r, "name", "/a")}
	if SubjectHash(r, a) != SubjectHash(r, b) {
		t.Fatal("hash must be order- and duplicate-invariant (set semantics)")
	}
	c := []prov.Record{rec(r, "type", "file"), rec(r, "name", "/a"), rec(r, "input", "/b:1")}
	if SubjectHash(r, a) == SubjectHash(r, c) {
		t.Fatal("hash must change when any record changes")
	}
	if SubjectHash(ref("/other", 0), a) == SubjectHash(r, a) {
		t.Fatal("hash must bind the subject reference")
	}
	if len(SubjectHash(r, a)) != hashHexLen {
		t.Fatalf("hash length = %d, want %d", len(SubjectHash(r, a)), hashHexLen)
	}
}

func TestMerkleRoot(t *testing.T) {
	if MerkleRoot(nil) != "empty" {
		t.Fatal("empty set must have the distinguished root")
	}
	a := MerkleRoot([]string{"l1", "l2", "l3"})
	if b := MerkleRoot([]string{"l3", "l1", "l2", "l2"}); b != a {
		t.Fatalf("root must be order/duplicate invariant: %s vs %s", a, b)
	}
	if MerkleRoot([]string{"l1", "l2"}) == MerkleRoot([]string{"l1", "lX"}) {
		t.Fatal("root must change when a leaf changes")
	}
}

func TestCheckpointTokenRoundTrip(t *testing.T) {
	cp := Checkpoint{Writer: "w0-s3", Seq: 17, Count: 42, Root: "abc123"}
	got, err := ParseCheckpoint(cp.Token())
	if err != nil {
		t.Fatal(err)
	}
	if got != cp {
		t.Fatalf("round trip: %+v != %+v", got, cp)
	}
	if _, err := ParseCheckpoint("v0|w|1|2|r"); err == nil {
		t.Fatal("wrong version must fail")
	}
	if _, err := ParseCheckpoint("garbage"); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestLedgerCommitReplaceRemove(t *testing.T) {
	l := NewLedger("w")
	cp1 := l.Commit(map[string][]string{"item1": {"a"}, "item2": {"b", "c"}})
	if cp1.Seq != 1 || cp1.Count != 3 {
		t.Fatalf("cp1 = %+v, want seq 1 count 3", cp1)
	}
	// Idempotent replay: same slots, same leaves — root unchanged.
	cp2 := l.Commit(map[string][]string{"item1": {"a"}})
	if cp2.Root != cp1.Root || cp2.Seq != 2 {
		t.Fatalf("replay changed root: %+v vs %+v", cp2, cp1)
	}
	// Replacement: a slot re-committed with new leaves drops the old ones.
	cp3 := l.Commit(map[string][]string{"item2": {"d"}})
	if cp3.Count != 2 {
		t.Fatalf("cp3 count = %d, want 2 after replacement", cp3.Count)
	}
	l.Remove("item1")
	if cp := l.Checkpoint(); cp.Count != 1 {
		t.Fatalf("after remove: count = %d, want 1", cp.Count)
	}
}

func TestVerifyHealthyChain(t *testing.T) {
	entries := chainSet(t, "/data/x", 4)
	var leaves []string
	for r, records := range entries {
		leaves = append(leaves, SubjectHash(r, records))
	}
	cps := []Checkpoint{
		{Writer: "w", Seq: 1, Count: 1, Root: "stale"},
		{Writer: "w", Seq: 2, Count: len(leaves), Root: MerkleRoot(leaves)},
	}
	res := VerifyAudit(&Audit{Entries: entries, Checkpoints: cps, RetainsHistory: true})
	if !res.Clean() {
		t.Fatalf("healthy audit flagged: %v", res.Divergences)
	}
	if res.Checkpoint.Seq != 2 {
		t.Fatalf("latest checkpoint seq = %d, want 2", res.Checkpoint.Seq)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	base := func() (map[prov.Ref][]prov.Record, []Checkpoint) {
		entries := chainSet(t, "/data/x", 3)
		var leaves []string
		for r, records := range entries {
			leaves = append(leaves, SubjectHash(r, records))
		}
		return entries, []Checkpoint{{Writer: "w", Seq: 1, Count: len(leaves), Root: MerkleRoot(leaves)}}
	}

	t.Run("flipped byte breaks chain and root", func(t *testing.T) {
		entries, cps := base()
		r1 := ref("/data/x", 1)
		entries[r1][1] = rec(r1, prov.AttrName, "/data/TAMPERED")
		res := VerifyAudit(&Audit{Entries: entries, Checkpoints: cps, RetainsHistory: true})
		if !hasKind(res, ChainBreak) {
			t.Fatalf("want chain-break, got %v", res.Divergences)
		}
		if !hasKind(res, RootMismatch) {
			t.Fatalf("want root-mismatch, got %v", res.Divergences)
		}
		// The break is anchored to the successor whose link dangles.
		for _, d := range res.Divergences {
			if d.Kind == ChainBreak && d.Subject != ref("/data/x", 2) {
				t.Fatalf("chain break anchored to %s, want /data/x:2", d.Subject)
			}
		}
	})

	t.Run("dropped version is a gap", func(t *testing.T) {
		entries, cps := base()
		delete(entries, ref("/data/x", 1))
		res := VerifyAudit(&Audit{Entries: entries, Checkpoints: cps, RetainsHistory: true})
		if !hasKind(res, ChainGap) || !hasKind(res, RootMismatch) {
			t.Fatalf("want chain-gap + root-mismatch, got %v", res.Divergences)
		}
	})

	t.Run("swapped chain tokens break", func(t *testing.T) {
		entries, cps := base()
		r1, r2 := ref("/data/x", 1), ref("/data/x", 2)
		i1, i2 := chainIndex(entries[r1]), chainIndex(entries[r2])
		entries[r1][i1].Value, entries[r2][i2].Value = entries[r2][i2].Value, entries[r1][i1].Value
		res := VerifyAudit(&Audit{Entries: entries, Checkpoints: cps, RetainsHistory: true})
		if !hasKind(res, ChainBreak) {
			t.Fatalf("want chain-break, got %v", res.Divergences)
		}
	})

	t.Run("dropped chain record", func(t *testing.T) {
		entries, cps := base()
		r1 := ref("/data/x", 1)
		entries[r1] = entries[r1][:2] // strip the chain record
		res := VerifyAudit(&Audit{Entries: entries, Checkpoints: cps, RetainsHistory: true})
		if !hasKind(res, ChainMissing) {
			t.Fatalf("want chain-missing, got %v", res.Divergences)
		}
	})

	t.Run("stripped checkpoints", func(t *testing.T) {
		entries, _ := base()
		res := VerifyAudit(&Audit{Entries: entries, RetainsHistory: true})
		if !hasKind(res, CheckpointMissing) {
			t.Fatalf("want checkpoint-missing, got %v", res.Divergences)
		}
	})
}

func TestVerifyWithoutHistoryTolerancesSupersededVersions(t *testing.T) {
	entries := chainSet(t, "/data/x", 3)
	// The S3-only design overwrote versions 0 and 1; only version 2 and
	// its link survive.
	delete(entries, ref("/data/x", 0))
	delete(entries, ref("/data/x", 1))
	var leaves []string
	for r, records := range entries {
		leaves = append(leaves, SubjectHash(r, records))
	}
	cps := []Checkpoint{{Writer: "w", Seq: 1, Count: len(leaves), Root: MerkleRoot(leaves)}}
	res := VerifyAudit(&Audit{Entries: entries, Checkpoints: cps, RetainsHistory: false})
	if !res.Clean() {
		t.Fatalf("superseded versions flagged without history: %v", res.Divergences)
	}
}

func TestVerifyDetachedAndMultiWriter(t *testing.T) {
	r := ref("/fetched", 3)
	records := []prov.Record{rec(r, prov.AttrType, prov.TypeFile), ChainRecord(r, TokenDetached)}
	entries := map[prov.Ref][]prov.Record{r: records}
	cps := []Checkpoint{
		{Writer: "w1", Seq: 1, Count: 1, Root: "r1"},
		{Writer: "w2", Seq: 1, Count: 1, Root: "r2"},
	}
	res := VerifyAudit(&Audit{Entries: entries, Checkpoints: cps, RetainsHistory: true})
	if !res.MultiWriter {
		t.Fatal("want multi-writer flagged")
	}
	if res.Detached != 1 {
		t.Fatalf("detached = %d, want 1", res.Detached)
	}
	if !res.Clean() {
		t.Fatalf("detached link / multi-writer must not diverge: %v", res.Divergences)
	}
}

func TestComposeRootsBindsOrder(t *testing.T) {
	if ComposeRoots([]string{"a", "b"}) == ComposeRoots([]string{"b", "a"}) {
		t.Fatal("namespace root must bind shard order")
	}
}

func TestVerifyObject(t *testing.T) {
	entries := chainSet(t, "/x", 3)
	for r, records := range chainSet(t, "/y", 2) {
		entries[r] = records
	}
	r1 := ref("/x", 1)
	entries[r1][0] = rec(r1, prov.AttrType, "tampered")
	ds, _ := VerifyObject("/x", entries, true, 0)
	if len(ds) != 1 || ds[0].Kind != ChainBreak {
		t.Fatalf("VerifyObject(/x) = %v, want one chain-break", ds)
	}
	if !strings.Contains(ds[0].Detail, "/x:1") {
		t.Fatalf("break detail must name the predecessor: %s", ds[0].Detail)
	}
	if ds, _ := VerifyObject("/y", entries, true, 0); len(ds) != 0 {
		t.Fatalf("VerifyObject(/y) = %v, want clean", ds)
	}
}

func hasKind(res *ShardResult, k DivergenceKind) bool {
	for _, d := range res.Divergences {
		if d.Kind == k {
			return true
		}
	}
	return false
}

func chainIndex(records []prov.Record) int {
	for i, r := range records {
		if r.Attr == AttrChain {
			return i
		}
	}
	return -1
}
