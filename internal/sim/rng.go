package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// RNG is a deterministic, concurrency-safe random source. Every simulated
// service draws from an RNG seeded by its configuration, so an entire
// simulation run is reproducible from its seeds.
type RNG struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand.
func (g *RNG) Intn(n int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Intn(n)
}

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Int63()
}

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Float64()
}

// NormFloat64 returns a normally distributed float64 (mean 0, stddev 1).
func (g *RNG) NormFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.NormFloat64()
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (g *RNG) ExpFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.ExpFloat64()
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Perm(n)
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.r.Shuffle(n, swap)
}

// Hex returns n bytes of randomness rendered as a 2n-character hex string.
// It is used for request IDs, receipt handles and nonces.
func (g *RNG) Hex(n int) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(g.r.Intn(256))
	}
	return fmt.Sprintf("%x", buf)
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal distribution. Workload generators use
// it for file-size distributions, which are heavy-tailed in all three paper
// workloads.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	n := g.NormFloat64()
	return math.Exp(mu + sigma*n)
}
