package sim

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockStartsAtEpoch(t *testing.T) {
	c := NewVirtualClock()
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want epoch %v", got, Epoch)
	}
}

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(3 * time.Second)
	if got, want := c.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualClockIgnoresNegativeAdvance(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(time.Second)
	before := c.Now()
	c.Advance(-time.Hour)
	if got := c.Now(); !got.Equal(before) {
		t.Fatalf("negative Advance moved clock: %v -> %v", before, got)
	}
}

func TestVirtualClockSetMonotonic(t *testing.T) {
	c := NewVirtualClock()
	target := Epoch.Add(time.Hour)
	c.Set(target)
	if got := c.Now(); !got.Equal(target) {
		t.Fatalf("Set forward failed: Now() = %v, want %v", got, target)
	}
	c.Set(Epoch) // earlier: must be ignored
	if got := c.Now(); !got.Equal(target) {
		t.Fatalf("Set backwards moved clock: Now() = %v, want %v", got, target)
	}
}

func TestVirtualClockConcurrentAdvance(t *testing.T) {
	c := NewVirtualClock()
	const workers, steps = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < steps; j++ {
				c.Advance(time.Millisecond)
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	want := Epoch.Add(workers * steps * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("lost advances under concurrency: Now() = %v, want %v", got, want)
	}
}

func TestWallClock(t *testing.T) {
	before := time.Now()
	got := WallClock{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("WallClock.Now() = %v not in [%v, %v]", got, before, after)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("same-seed RNGs diverged at draw %d: %d != %d", i, x, y)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("differently seeded RNGs produced identical streams")
	}
}

func TestRNGHex(t *testing.T) {
	g := NewRNG(7)
	s := g.Hex(16)
	if len(s) != 32 {
		t.Fatalf("Hex(16) length = %d, want 32", len(s))
	}
	for _, r := range s {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			t.Fatalf("Hex produced non-hex rune %q in %q", r, s)
		}
	}
	if g.Hex(16) == s {
		t.Fatal("consecutive Hex calls returned identical strings")
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	g := NewRNG(3)
	f := func(seed int64) bool {
		return g.LogNormal(8, 2) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if v := g.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestRNGConcurrentUse(t *testing.T) {
	g := NewRNG(5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Intn(100)
				g.Float64()
				g.Hex(4)
			}
		}()
	}
	wg.Wait() // race detector is the assertion here
}

func TestFaultPlanFiresOnce(t *testing.T) {
	p := NewFaultPlan()
	p.Arm("step")
	err := p.Check("step")
	if err == nil {
		t.Fatal("armed point did not fire")
	}
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("crash error not wrapped as ErrCrash: %v", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Point != "step" {
		t.Fatalf("crash error missing point: %v", err)
	}
	if err := p.Check("step"); err != nil {
		t.Fatalf("point fired twice: %v", err)
	}
	if got := p.Fired("step"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestFaultPlanArmAfterSkips(t *testing.T) {
	p := NewFaultPlan()
	p.ArmAfter("put", 2)
	for i := 0; i < 2; i++ {
		if err := p.Check("put"); err != nil {
			t.Fatalf("fired on check %d, want skip", i)
		}
	}
	if err := p.Check("put"); err == nil {
		t.Fatal("did not fire on third check")
	}
}

func TestFaultPlanUnarmedPoint(t *testing.T) {
	p := NewFaultPlan()
	p.Arm("a")
	if err := p.Check("b"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if !p.Pending() {
		t.Fatal("Pending() = false with an armed fault outstanding")
	}
}

func TestNilFaultPlanIsInert(t *testing.T) {
	var p *FaultPlan
	if err := p.Check("anything"); err != nil {
		t.Fatalf("nil plan crashed: %v", err)
	}
	if p.Fired("anything") != 0 || p.Pending() {
		t.Fatal("nil plan reported state")
	}
	p.Arm("x") // must not panic
}

func TestFaultPlanConcurrent(t *testing.T) {
	p := NewFaultPlan()
	p.ArmAfter("op", 500)
	var wg sync.WaitGroup
	var mu sync.Mutex
	crashes := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if err := p.Check("op"); err != nil {
					mu.Lock()
					crashes++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if crashes != 1 {
		t.Fatalf("crash fired %d times, want exactly 1", crashes)
	}
}
