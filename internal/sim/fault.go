package sim

import (
	"errors"
	"fmt"
	"sync"
)

// ErrCrash is the sentinel wrapped by every injected crash. Protocol code
// returns it up the stack, simulating the client process dying at that point;
// callers (tests, the property checkers) detect it with errors.Is.
var ErrCrash = errors.New("sim: injected client crash")

// CrashError reports an injected crash at a named protocol point.
type CrashError struct {
	// Point is the name of the crash point that fired, e.g.
	// "s3sdb/after-put-attributes".
	Point string
}

// Error implements the error interface.
func (e *CrashError) Error() string {
	return fmt.Sprintf("sim: injected client crash at %q", e.Point)
}

// Unwrap makes errors.Is(err, ErrCrash) true for injected crashes.
func (e *CrashError) Unwrap() error { return ErrCrash }

// FaultClass is the kind of failure a fault injects. Crashes model the
// client process dying at a protocol point; the other three model the cloud
// service failing an individual API call.
type FaultClass int

// The fault classes the resilience subsystem distinguishes.
const (
	// ClassCrash kills the client at a protocol point (Check).
	ClassCrash FaultClass = iota
	// ClassTransient fails the op without applying it — a throttle, 503 or
	// timeout a retry can wait out.
	ClassTransient
	// ClassPermanent fails the op without applying it — an error no retry
	// will cure (denied, invalid); callers must surface it.
	ClassPermanent
	// ClassAckLoss applies the op but loses the response: the caller sees a
	// transient error even though the state changed. This is the case that
	// breaks naive retries — the retried op re-applies.
	ClassAckLoss
	// ClassCorrupt tampers with committed state after the fact: a byte
	// flipped in a stored record, two versions' lineage swapped, a record
	// silently dropped. Unlike the other classes it is not an API-call
	// failure — the harness applies it post-commit through raw cloud
	// access — so ArmOp rejects it; use ArmCorruption.
	ClassCorrupt
)

// String names the class for fault-schedule logs.
func (c FaultClass) String() string {
	switch c {
	case ClassCrash:
		return "crash"
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	case ClassAckLoss:
		return "ackloss"
	case ClassCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("FaultClass(%d)", int(c))
	}
}

// CorruptKind selects how a post-commit corruption mutates the store.
type CorruptKind int

// The corruption kinds the tamper-evidence sweep injects.
const (
	// CorruptFlipByte alters one byte of a stored record value.
	CorruptFlipByte CorruptKind = iota
	// CorruptSwapVersion swaps lineage between adjacent versions (or
	// forges a stored version number, on stores that keep one version).
	CorruptSwapVersion
	// CorruptDropRecord silently removes one committed record.
	CorruptDropRecord
)

// String names the kind for fault-schedule logs.
func (k CorruptKind) String() string {
	switch k {
	case CorruptFlipByte:
		return "flip-byte"
	case CorruptSwapVersion:
		return "swap-version"
	case CorruptDropRecord:
		return "drop-record"
	default:
		return fmt.Sprintf("CorruptKind(%d)", int(k))
	}
}

// Corruption is one armed post-commit tampering. Pick seeds the
// deterministic choice of victim (which item, which attribute), so a
// logged schedule replays to the identical mutation.
type Corruption struct {
	Kind CorruptKind
	Pick int64
}

// OpOutcome tells a simulated service what to do with one API call.
type OpOutcome int

// Outcomes of CheckOp.
const (
	// OpProceed: no fault; execute normally.
	OpProceed OpOutcome = iota
	// OpFailTransient: do not apply; return a transient (retryable) error.
	OpFailTransient
	// OpFailPermanent: do not apply; return a permanent error.
	OpFailPermanent
	// OpAckLoss: apply fully, then return a transient error anyway.
	OpAckLoss
)

// opFault is one armed op-level fault window: it fires on the op's checks
// numbered [from, from+count), where from is absolute (counted from the
// plan's creation) and fixed at arm time.
type opFault struct {
	class FaultClass
	from  int
	count int
}

// FaultPlan injects crashes at named protocol points and service-level
// failures at named operations. Protocol implementations call Check at each
// step boundary; a plan armed for that point makes Check return a
// *CrashError exactly once (a client crashes once, then restarts and runs
// recovery). Simulated services call CheckOp before applying an API call; an
// armed op fault makes them fail (or apply-then-fail, for ack loss).
//
// The zero value is a usable plan with no faults armed. FaultPlan is safe for
// concurrent use.
type FaultPlan struct {
	mu    sync.Mutex
	armed map[string]int // point -> remaining hits before firing
	fired map[string]int // point -> times fired (for assertions)

	opArmed  map[string][]opFault // op -> armed windows
	opChecks map[string]int       // op -> checks seen so far
	opFired  map[string]int       // op -> times an op fault fired

	corruptions []Corruption // armed post-commit corruptions, in arm order
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// Arm schedules a crash the next time point is checked.
func (p *FaultPlan) Arm(point string) { p.ArmAfter(point, 0) }

// ArmAfter schedules a crash at the (skip+1)-th check of point. skip = 0
// crashes on the first check; skip = 2 lets the point pass twice and crashes
// on the third. This is how tests crash, say, the second PutAttributes call
// of a multi-chunk store.
func (p *FaultPlan) ArmAfter(point string, skip int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.armed == nil {
		p.armed = make(map[string]int)
	}
	p.armed[point] = skip
}

// Check reports whether the client crashes at point. A nil plan never
// crashes, so production paths can carry a nil *FaultPlan at zero cost.
func (p *FaultPlan) Check(point string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	remaining, ok := p.armed[point]
	if !ok {
		return nil
	}
	if remaining > 0 {
		p.armed[point] = remaining - 1
		return nil
	}
	delete(p.armed, point)
	if p.fired == nil {
		p.fired = make(map[string]int)
	}
	p.fired[point]++
	return &CrashError{Point: point}
}

// Fired reports how many times a crash fired at point.
func (p *FaultPlan) Fired(point string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired[point]
}

// Pending reports whether any armed fault has not yet fired. Tests use it to
// assert that the scenario actually reached its crash point.
func (p *FaultPlan) Pending() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.armed) > 0
}

// ArmOp schedules count consecutive faults of the given class at operation
// op (a service-qualified name like "s3/PUT"), starting after the next skip
// checks of op pass through. A transient fault with count = 3 fails the op
// three times and lets the fourth attempt through — the shape a backoff
// policy must absorb. ClassCrash is a protocol-point concept and is
// rejected here.
func (p *FaultPlan) ArmOp(op string, class FaultClass, skip, count int) {
	if p == nil || count <= 0 {
		return
	}
	if class == ClassCrash {
		panic("sim: ArmOp cannot inject ClassCrash; use Arm on a protocol point")
	}
	if class == ClassCorrupt {
		panic("sim: ArmOp cannot inject ClassCorrupt; use ArmCorruption")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.opArmed == nil {
		p.opArmed = make(map[string][]opFault)
	}
	p.opArmed[op] = append(p.opArmed[op], opFault{class: class, from: p.opChecks[op] + skip, count: count})
}

// CheckOp reports how the service must treat this call of op. Each call
// consumes one check slot; the first armed window covering the slot decides
// the outcome. A nil plan always proceeds, so production services carry a
// nil *FaultPlan at zero cost.
func (p *FaultPlan) CheckOp(op string) OpOutcome {
	if p == nil {
		return OpProceed
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.opChecks == nil {
		p.opChecks = make(map[string]int)
	}
	idx := p.opChecks[op]
	p.opChecks[op] = idx + 1
	for _, w := range p.opArmed[op] {
		if idx < w.from || idx >= w.from+w.count {
			continue
		}
		if p.opFired == nil {
			p.opFired = make(map[string]int)
		}
		p.opFired[op]++
		switch w.class {
		case ClassTransient:
			return OpFailTransient
		case ClassPermanent:
			return OpFailPermanent
		case ClassAckLoss:
			return OpAckLoss
		}
	}
	return OpProceed
}

// DisarmOps drops every armed op-fault window that has not yet fired.
// Harnesses call it when scheduled injection is over but raw access to the
// services follows (e.g. applying post-commit corruption): the adversary's
// out-of-band writes are not subject to the workload's fault schedule.
// Check counters and fired counts are preserved.
func (p *FaultPlan) DisarmOps() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.opArmed = nil
}

// ArmCorruption schedules a post-commit corruption. The plan only carries
// the schedule — the harness applies it through raw cloud access once
// recovery has converged, then asserts the verifier detects it.
func (p *FaultPlan) ArmCorruption(c Corruption) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.corruptions = append(p.corruptions, c)
}

// Corruptions returns the armed post-commit corruptions, in arm order.
func (p *FaultPlan) Corruptions() []Corruption {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Corruption(nil), p.corruptions...)
}

// OpFired reports how many op faults fired at op.
func (p *FaultPlan) OpFired(op string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.opFired[op]
}

// OpChecks reports how many times op was checked — the attempt count a
// retried operation generated, as the service saw it.
func (p *FaultPlan) OpChecks(op string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.opChecks[op]
}
