package sim

import (
	"errors"
	"fmt"
	"sync"
)

// ErrCrash is the sentinel wrapped by every injected crash. Protocol code
// returns it up the stack, simulating the client process dying at that point;
// callers (tests, the property checkers) detect it with errors.Is.
var ErrCrash = errors.New("sim: injected client crash")

// CrashError reports an injected crash at a named protocol point.
type CrashError struct {
	// Point is the name of the crash point that fired, e.g.
	// "s3sdb/after-put-attributes".
	Point string
}

// Error implements the error interface.
func (e *CrashError) Error() string {
	return fmt.Sprintf("sim: injected client crash at %q", e.Point)
}

// Unwrap makes errors.Is(err, ErrCrash) true for injected crashes.
func (e *CrashError) Unwrap() error { return ErrCrash }

// FaultPlan injects crashes at named protocol points. Protocol
// implementations call Check at each step boundary; a plan armed for that
// point makes Check return a *CrashError exactly once (a client crashes once,
// then restarts and runs recovery).
//
// The zero value is a usable plan with no faults armed. FaultPlan is safe for
// concurrent use.
type FaultPlan struct {
	mu    sync.Mutex
	armed map[string]int // point -> remaining hits before firing
	fired map[string]int // point -> times fired (for assertions)
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// Arm schedules a crash the next time point is checked.
func (p *FaultPlan) Arm(point string) { p.ArmAfter(point, 0) }

// ArmAfter schedules a crash at the (skip+1)-th check of point. skip = 0
// crashes on the first check; skip = 2 lets the point pass twice and crashes
// on the third. This is how tests crash, say, the second PutAttributes call
// of a multi-chunk store.
func (p *FaultPlan) ArmAfter(point string, skip int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.armed == nil {
		p.armed = make(map[string]int)
	}
	p.armed[point] = skip
}

// Check reports whether the client crashes at point. A nil plan never
// crashes, so production paths can carry a nil *FaultPlan at zero cost.
func (p *FaultPlan) Check(point string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	remaining, ok := p.armed[point]
	if !ok {
		return nil
	}
	if remaining > 0 {
		p.armed[point] = remaining - 1
		return nil
	}
	delete(p.armed, point)
	if p.fired == nil {
		p.fired = make(map[string]int)
	}
	p.fired[point]++
	return &CrashError{Point: point}
}

// Fired reports how many times a crash fired at point.
func (p *FaultPlan) Fired(point string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired[point]
}

// Pending reports whether any armed fault has not yet fired. Tests use it to
// assert that the scenario actually reached its crash point.
func (p *FaultPlan) Pending() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.armed) > 0
}
