package sim

import "testing"

func TestArmOpWindowFiresAfterSkip(t *testing.T) {
	p := NewFaultPlan()
	p.ArmOp("s3/PUT", ClassTransient, 2, 3)
	want := []OpOutcome{OpProceed, OpProceed, OpFailTransient, OpFailTransient, OpFailTransient, OpProceed}
	for i, w := range want {
		if got := p.CheckOp("s3/PUT"); got != w {
			t.Fatalf("check %d: got %v, want %v", i, got, w)
		}
	}
	if p.OpFired("s3/PUT") != 3 {
		t.Fatalf("fired = %d, want 3", p.OpFired("s3/PUT"))
	}
	if p.OpChecks("s3/PUT") != len(want) {
		t.Fatalf("checks = %d, want %d", p.OpChecks("s3/PUT"), len(want))
	}
}

func TestArmOpWindowIsRelativeToArmTime(t *testing.T) {
	p := NewFaultPlan()
	// Consume some checks before arming: the window must count from now.
	for i := 0; i < 5; i++ {
		if got := p.CheckOp("sdb/Select"); got != OpProceed {
			t.Fatalf("unarmed check %d: %v", i, got)
		}
	}
	p.ArmOp("sdb/Select", ClassAckLoss, 1, 1)
	if got := p.CheckOp("sdb/Select"); got != OpProceed {
		t.Fatalf("skip check: %v", got)
	}
	if got := p.CheckOp("sdb/Select"); got != OpAckLoss {
		t.Fatalf("armed check: got %v, want OpAckLoss", got)
	}
	if got := p.CheckOp("sdb/Select"); got != OpProceed {
		t.Fatalf("window must close: %v", got)
	}
}

func TestArmOpClasses(t *testing.T) {
	p := NewFaultPlan()
	p.ArmOp("a", ClassTransient, 0, 1)
	p.ArmOp("b", ClassPermanent, 0, 1)
	p.ArmOp("c", ClassAckLoss, 0, 1)
	if got := p.CheckOp("a"); got != OpFailTransient {
		t.Errorf("transient: %v", got)
	}
	if got := p.CheckOp("b"); got != OpFailPermanent {
		t.Errorf("permanent: %v", got)
	}
	if got := p.CheckOp("c"); got != OpAckLoss {
		t.Errorf("ackloss: %v", got)
	}
}

func TestArmOpRejectsCrashClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArmOp with ClassCrash must panic: crashes are protocol points")
		}
	}()
	NewFaultPlan().ArmOp("a", ClassCrash, 0, 1)
}

func TestNilPlanOpsProceed(t *testing.T) {
	var p *FaultPlan
	if got := p.CheckOp("x"); got != OpProceed {
		t.Fatalf("nil plan: %v", got)
	}
	p.ArmOp("x", ClassTransient, 0, 1) // must not panic
	if p.OpFired("x") != 0 || p.OpChecks("x") != 0 {
		t.Fatal("nil plan must report zero activity")
	}
}

func TestFaultClassStrings(t *testing.T) {
	for class, want := range map[FaultClass]string{
		ClassCrash: "crash", ClassTransient: "transient",
		ClassPermanent: "permanent", ClassAckLoss: "ackloss",
	} {
		if class.String() != want {
			t.Errorf("%d.String() = %q, want %q", class, class.String(), want)
		}
	}
}
