// Package sim provides the simulation substrate shared by every simulated
// cloud service in this repository: a controllable clock, a deterministic
// random source, and fault-injection plans.
//
// The paper's analysis depends on behaviours that are awkward to observe on
// real infrastructure — eventual-consistency anomalies, client crashes at
// precise protocol steps, message-retention expiry measured in days. Driving
// every service from a virtual clock and explicit fault plans makes each of
// those behaviours reachable deterministically in tests and benchmarks.
package sim

import (
	"sync"
	"time"
)

// Clock is the time source used by all simulated services.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current simulated time.
	Now() time.Time
}

// Epoch is the instant at which fresh virtual clocks start. The specific
// value is arbitrary but fixed so that runs are reproducible; it matches the
// AWS feature snapshot date the paper uses (January 2009).
var Epoch = time.Date(2009, time.January, 15, 0, 0, 0, 0, time.UTC)

// VirtualClock is a manually advanced Clock. The zero value is not usable;
// create one with NewVirtualClock.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock positioned at Epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: Epoch}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative durations are ignored:
// simulated time never moves backwards.
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set positions the clock at t if t is later than the current time.
// Earlier instants are ignored so time remains monotonic.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}

// WallClock is a Clock backed by the operating system's real time. It is
// used by long-running demos (cmd/awssim) where manual advancement would be
// inconvenient.
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }
