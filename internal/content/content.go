// Package content generates deterministic pseudo-random payloads.
//
// The paper's combined dataset is 1.27 GB of file data. Regenerating byte
// streams from (seed, size) pairs — instead of keeping every payload resident
// — lets the benchmark harness run the storage protocols at full paper scale
// while the simulated S3 retains real bodies only at reduced scale. The same
// seed always yields the same bytes, so MD5-based consistency checks behave
// exactly as they would over stored data.
package content

import (
	"crypto/md5"
	"encoding/binary"
)

// Bytes returns size deterministic pseudo-random bytes derived from seed.
// Identical (seed, size) pairs always produce identical output.
func Bytes(seed uint64, size int) []byte {
	if size <= 0 {
		return nil
	}
	out := make([]byte, size)
	Fill(seed, out)
	return out
}

// Fill writes the deterministic stream for seed into dst. It generates the
// same prefix as Bytes(seed, len(dst)).
func Fill(seed uint64, dst []byte) {
	// xorshift64* — tiny, fast, and good enough for non-cryptographic
	// payload synthesis. Zero seeds are remapped because xorshift fixed
	// points at zero.
	x := seed
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	i := 0
	for i+8 <= len(dst) {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		binary.LittleEndian.PutUint64(dst[i:], x*0x2545F4914F6CDD1D)
		i += 8
	}
	if i < len(dst) {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		var tail [8]byte
		binary.LittleEndian.PutUint64(tail[:], x*0x2545F4914F6CDD1D)
		copy(dst[i:], tail[:])
	}
}

// MD5 returns the MD5 digest of the deterministic stream for (seed, size)
// without materializing more than one block at a time. MD5 is the integrity
// primitive the paper itself uses for its consistency records, so it is used
// here deliberately despite being cryptographically broken.
func MD5(seed uint64, size int) [md5.Size]byte {
	h := md5.New()
	const block = 64 * 1024
	buf := make([]byte, block)
	x := seed
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	remaining := size
	for remaining > 0 {
		n := block
		if remaining < n {
			n = remaining
		}
		// Reproduce Fill's stream incrementally: Fill is stateless per
		// call, so chunked hashing must mirror its generator exactly.
		for i := 0; i < n; i += 8 {
			x ^= x >> 12
			x ^= x << 25
			x ^= x >> 27
			binary.LittleEndian.PutUint64(buf[i:], x*0x2545F4914F6CDD1D)
		}
		h.Write(buf[:n])
		remaining -= n
	}
	var sum [md5.Size]byte
	h.Sum(sum[:0])
	return sum
}
