package content

import (
	"bytes"
	"crypto/md5"
	"testing"
	"testing/quick"
)

func TestBytesDeterministic(t *testing.T) {
	a := Bytes(42, 1000)
	b := Bytes(42, 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("same (seed, size) produced different bytes")
	}
}

func TestBytesSeedsDiffer(t *testing.T) {
	if bytes.Equal(Bytes(1, 256), Bytes(2, 256)) {
		t.Fatal("different seeds produced identical bytes")
	}
}

func TestBytesPrefixProperty(t *testing.T) {
	// Bytes(seed, n) must be a prefix of Bytes(seed, m) for n <= m when both
	// are multiples of the generator word; Fill documents this via chunked
	// MD5. Check at word-aligned sizes.
	long := Bytes(9, 1024)
	short := Bytes(9, 512)
	if !bytes.Equal(long[:512], short) {
		t.Fatal("shorter stream is not a prefix of longer stream")
	}
}

func TestBytesSizeEdgeCases(t *testing.T) {
	if got := Bytes(1, 0); got != nil {
		t.Fatalf("Bytes(_, 0) = %v, want nil", got)
	}
	if got := Bytes(1, -5); got != nil {
		t.Fatalf("Bytes(_, -5) = %v, want nil", got)
	}
	for _, size := range []int{1, 7, 8, 9, 63, 64, 65, 4096} {
		if got := len(Bytes(3, size)); got != size {
			t.Fatalf("len(Bytes(3, %d)) = %d", size, got)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	b := Bytes(0, 64)
	allZero := true
	for _, v := range b {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("zero seed produced all-zero stream (xorshift fixed point)")
	}
}

func TestMD5MatchesBytes(t *testing.T) {
	for _, size := range []int{0, 1, 7, 8, 100, 64 * 1024, 64*1024 + 1, 200_000} {
		want := md5.Sum(Bytes(77, size))
		got := MD5(77, size)
		if got != want {
			t.Fatalf("MD5(77, %d) mismatch with md5.Sum(Bytes(...))", size)
		}
	}
}

func TestMD5MatchesBytesQuick(t *testing.T) {
	f := func(seed uint64, rawSize uint16) bool {
		size := int(rawSize)
		return MD5(seed, size) == md5.Sum(Bytes(seed, size))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFillMatchesBytes(t *testing.T) {
	dst := make([]byte, 333)
	Fill(5, dst)
	if !bytes.Equal(dst, Bytes(5, 333)) {
		t.Fatal("Fill and Bytes disagree")
	}
}

func BenchmarkFill64K(b *testing.B) {
	buf := make([]byte, 64*1024)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		Fill(uint64(i), buf)
	}
}
