package workload

import (
	"context"

	"fmt"

	"passcloud/internal/pass"
	"passcloud/internal/sim"
)

// Blast models the paper's second workload [11]: a BLAST sequence-search
// run. formatdb converts a FASTA database into indexed files; each search
// job then runs as the shell pipeline
//
//	cat batch | blastall | tee -a job.out
//
// streaming query batches against the indexed database and appending hits.
//
// The pipeline shape matters for provenance volume: every batch contributes
// a cat process, two pipes, and — because blastall and tee gain a new input
// after producing output — new blastall and tee versions (PASS cycle
// avoidance). Transient object versions therefore dwarf stored files, which
// is PASS's published experience with Blast and the reason the paper's
// SimpleDB item count is several times its S3 object count.
type Blast struct {
	// Jobs is the number of pipeline invocations at scale 1.0.
	Jobs int
	// BatchesPerJob is how many query batches each job streams.
	BatchesPerJob int
	// DatabaseSize is the FASTA database size in bytes at scale 1.0.
	DatabaseSize int
	// MeanBatchSize, MeanResultSize are mean sizes in bytes of one query
	// batch file and one appended result chunk.
	MeanBatchSize, MeanResultSize int
	// BigEnvFraction is the fraction of processes with >1 KB environments.
	BigEnvFraction float64
	// Scale multiplies Jobs and DatabaseSize (1.0 = paper scale).
	Scale float64
}

// DefaultBlast returns the configuration used for the paper dataset.
func DefaultBlast(scale float64) *Blast {
	return &Blast{
		Jobs:           510,
		BatchesPerJob:  40,
		DatabaseSize:   150 << 20,
		MeanBatchSize:  10 << 10,
		MeanResultSize: 15 << 10,
		BigEnvFraction: 0.27,
		Scale:          scale,
	}
}

// Name implements Workload.
func (w *Blast) Name() string { return "blast" }

// Run implements Workload.
func (w *Blast) Run(ctx context.Context, sys *pass.System, rng *sim.RNG) error {
	nJobs := scaleCount(w.Jobs, w.Scale, 1)
	dbSize := scaleCount(w.DatabaseSize, w.Scale, 1<<20)

	// The raw database is a downloaded data set.
	const fasta = "/blast/db/nr.fasta"
	if err := sys.Ingest(ctx, fasta, payload(rng, dbSize)); err != nil {
		return err
	}

	// formatdb indexes it into three files (.phr/.pin/.psq).
	formatdb := sys.Exec(nil, pass.ExecSpec{
		Name: "formatdb",
		Argv: []string{"formatdb", "-i", fasta},
		Env:  env(rng, envSize(rng, w.BigEnvFraction)),
	})
	if err := sys.Read(formatdb, fasta); err != nil {
		return err
	}
	dbFiles := []string{"/blast/db/nr.phr", "/blast/db/nr.pin", "/blast/db/nr.psq"}
	for _, f := range dbFiles {
		if err := toolWrite(sys, formatdb, f, pass.Truncate); err != nil {
			return err
		}
		if err := sys.Close(ctx, formatdb, f); err != nil {
			return err
		}
	}
	sys.Exit(formatdb)

	for j := 0; j < nJobs; j++ {
		// Each job's query batches pre-exist.
		batches := make([]string, w.BatchesPerJob)
		for b := range batches {
			batches[b] = fmt.Sprintf("/blast/queries/job%04d/batch%03d.fasta", j, b)
			if err := sys.Ingest(ctx, batches[b], payload(rng, sizeAround(rng, w.MeanBatchSize))); err != nil {
				return err
			}
		}

		blast := sys.Exec(nil, pass.ExecSpec{
			Name: "blastall",
			Argv: []string{"blastall", "-p", "blastp", "-d", "nr"},
			Env:  env(rng, envSize(rng, w.BigEnvFraction)),
		})
		tee := sys.Exec(nil, pass.ExecSpec{
			Name: "tee",
			Argv: argvWithSize([]string{"tee", "-a", fmt.Sprintf("job%04d.out", j)}, w.MeanResultSize),
			Env:  env(rng, envSize(rng, w.BigEnvFraction)),
		})
		for _, f := range dbFiles {
			if err := sys.Read(blast, f); err != nil {
				return err
			}
		}
		out := fmt.Sprintf("/blast/results/job%04d.out", j)
		for _, batch := range batches {
			cat := sys.Exec(nil, pass.ExecSpec{
				Name: "cat",
				Argv: []string{"cat", batch},
				Env:  env(rng, envSize(rng, w.BigEnvFraction)),
			})
			if err := sys.Read(cat, batch); err != nil {
				return err
			}
			if err := sys.Pipe(cat, blast); err != nil {
				return err
			}
			sys.Exit(cat)
			if err := sys.Pipe(blast, tee); err != nil {
				return err
			}
			if err := toolWrite(sys, tee, out, pass.Append); err != nil {
				return err
			}
		}
		if err := sys.Close(ctx, tee, out); err != nil {
			return err
		}
		sys.Exit(blast)
		sys.Exit(tee)

		// A summarizer script post-processes the job's hits.
		perl := sys.Exec(nil, pass.ExecSpec{
			Name: "perl",
			Argv: []string{"perl", "summarize.pl", out},
			Env:  env(rng, envSize(rng, w.BigEnvFraction)),
		})
		if err := sys.Read(perl, out); err != nil {
			return err
		}
		summary := fmt.Sprintf("/blast/results/job%04d.summary", j)
		if err := toolWrite(sys, perl, summary, pass.Truncate); err != nil {
			return err
		}
		if err := sys.Close(ctx, perl, summary); err != nil {
			return err
		}
		sys.Exit(perl)
	}
	return sys.Sync(ctx)
}
