package workload

import (
	"context"
	"errors"
	"fmt"

	"passcloud/internal/cloud"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/core/shard"
)

// LoadArchs is the architecture axis the load harness drives, in report
// order (the paper's names).
var LoadArchs = []string{"s3", "s3+sdb", "s3+sdb+sqs"}

// BuildLoadTarget constructs the standard load target for one tenant:
// `shards` member stores of the named architecture, each bound to its own
// isolated namespace of the region — billing key "t<tenant>/s<shard>" —
// composed behind a shard router when shards > 1. This is the one
// construction passbench -load and the harness tests share, so the
// capacity numbers in the README come from exactly the code under test.
func BuildLoadTarget(multi *cloud.Multi, arch string, tenant, shards int) (LoadTarget, error) {
	if shards <= 0 {
		shards = 1
	}
	tg := LoadTarget{}
	var stores []shard.Store
	var drains []func(context.Context) error
	for s := 0; s < shards; s++ {
		cl := multi.Namespace(fmt.Sprintf("t%d/s%d", tenant, s))
		tg.Clouds = append(tg.Clouds, cl)
		switch arch {
		case "s3":
			st, err := s3only.New(s3only.Config{Cloud: cl})
			if err != nil {
				return tg, err
			}
			stores = append(stores, st)
		case "s3+sdb":
			st, err := s3sdb.New(s3sdb.Config{Cloud: cl})
			if err != nil {
				return tg, err
			}
			stores = append(stores, st)
		case "s3+sdb+sqs":
			st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl, ClientID: fmt.Sprintf("t%d-s%d", tenant, s)})
			if err != nil {
				return tg, err
			}
			daemon := s3sdbsqs.NewCommitDaemon(st, nil)
			drains = append(drains, func(ctx context.Context) error {
				for i := 0; i < 100; i++ {
					n, err := daemon.RunOnce(ctx, true)
					if err != nil {
						return err
					}
					if n == 0 && daemon.PendingTransactions() == 0 {
						return nil
					}
				}
				return errors.New("workload: commit daemon did not drain")
			})
			stores = append(stores, st)
		default:
			return tg, fmt.Errorf("workload: unknown architecture %q", arch)
		}
	}
	if shards == 1 {
		tg.Store = stores[0]
	} else {
		r, err := shard.New(shard.Config{Shards: stores})
		if err != nil {
			return tg, err
		}
		tg.Store = r
	}
	if len(drains) > 0 {
		tg.Drain = func(ctx context.Context) error {
			for _, d := range drains {
				if err := d(ctx); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return tg, nil
}
