// Package workload generates the three PASS workloads the paper evaluates
// (§5): a Linux compile, a Blast run, and the Provenance Challenge workload.
// "We use the combined provenance generated from all three benchmarks as one
// single dataset"; Combined reproduces that dataset's aggregate shape —
// object counts, provenance-to-data ratio, and the >1 KB record tail — at a
// configurable scale.
//
// Generators drive a pass.System through simulated syscalls, so provenance
// is captured by observation exactly as PASS would, not synthesized
// directly. File payloads come from internal/content, so runs are fully
// deterministic in their seeds.
package workload

import (
	"context"

	"fmt"

	"passcloud/internal/content"
	"passcloud/internal/pass"
	"passcloud/internal/sim"
)

// Workload generates activity on a PASS system.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Run drives the system. Implementations must call sys.Sync(ctx) before
	// returning so every frozen version reaches the storage layer.
	Run(ctx context.Context, sys *pass.System, rng *sim.RNG) error
}

// clampScale keeps scaled counts meaningful: at least minimum, at most the
// unscaled value.
func scaleCount(n int, scale float64, minimum int) int {
	if scale <= 0 {
		scale = 1
	}
	v := int(float64(n) * scale)
	if v < minimum {
		v = minimum
	}
	return v
}

// payload synthesizes a deterministic file body of the given size.
func payload(rng *sim.RNG, size int) []byte {
	if size < 1 {
		size = 1
	}
	return content.Bytes(uint64(rng.Int63()), size)
}

// sizeAround samples a log-normal-ish size centered near mean bytes,
// clamped to [1, 64*mean] to avoid pathological tails.
func sizeAround(rng *sim.RNG, mean int) int {
	if mean < 1 {
		mean = 1
	}
	v := int(rng.LogNormal(0, 0.6) * float64(mean))
	if v < 1 {
		v = 1
	}
	if v > 64*mean {
		v = 64 * mean
	}
	return v
}

// env synthesizes a process environment string of the given size. Large
// environments are what push provenance records past the 1 KB / 2 KB limits
// in the paper's measurements.
func env(rng *sim.RNG, size int) string {
	if size <= 0 {
		return ""
	}
	b := make([]byte, size)
	content.Fill(uint64(rng.Int63()), b)
	// Map to printable ASCII so the value is representative of PATH=...
	// style environment text (and valid UTF-8 for SQS).
	for i := range b {
		b[i] = 'A' + b[i]%26
	}
	return string(b)
}

// envSize samples the environment-size distribution: mostly modest, with a
// heavy tail that exceeds 1 KB — "the provenance of a process exceeds the
// 2KB limit (which we see regularly)".
func envSize(rng *sim.RNG, bigFraction float64) int {
	if rng.Float64() < bigFraction {
		return 1100 + rng.Intn(5200) // 1.1 KB – 6.3 KB: over every limit
	}
	return 250 + rng.Intn(850)
}

// Run executes workloads in sequence on one system.
func Run(ctx context.Context, sys *pass.System, rng *sim.RNG, workloads ...Workload) error {
	for _, w := range workloads {
		if err := w.Run(ctx, sys, rng); err != nil {
			return fmt.Errorf("workload %s: %w", w.Name(), err)
		}
	}
	return sys.Sync(ctx)
}
