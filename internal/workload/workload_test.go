package workload

import (
	"context"
	"testing"

	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// tally summarizes a flush stream the way the paper's Table 2 does.
type tally struct {
	files      int
	transients int
	dataBytes  int64
	records    int
	provS3     int64 // provenance in S3-metadata form
	big        int   // records with values > 1 KB
	graph      *prov.Graph
	flushed    map[prov.Ref]bool
	violation  bool
}

func newTally() *tally {
	return &tally{graph: prov.NewGraph(), flushed: make(map[prov.Ref]bool)}
}

func (c *tally) flush(_ context.Context, batch []pass.FlushEvent) error {
	for _, ev := range batch {
		c.flushOne(ev)
	}
	return nil
}

func (c *tally) flushOne(ev pass.FlushEvent) {
	if ev.Persistent() {
		c.files++
		c.dataBytes += int64(len(ev.Data))
	} else {
		c.transients++
	}
	for _, r := range ev.Records {
		c.records++
		if r.Value.Size() > 1024 {
			c.big++
		}
		if r.Attr == prov.AttrInput && !c.flushed[r.Value.Ref] {
			c.violation = true
		}
	}
	c.provS3 += int64(prov.S3MetadataSize(prov.EncodeS3Metadata(ev.Records)))
	c.flushed[ev.Ref] = true
	c.graph.AddAll(ev.Records)
}

func runWorkload(t *testing.T, w Workload, seed int64) (*tally, *pass.System) {
	t.Helper()
	c := newTally()
	sys := pass.NewSystem(pass.Config{Flush: c.flush})
	if err := Run(context.Background(), sys, sim.NewRNG(seed), w); err != nil {
		t.Fatalf("run %s: %v", w.Name(), err)
	}
	return c, sys
}

func TestLinuxCompileShape(t *testing.T) {
	w := DefaultLinuxCompile(0.02) // 64 sources
	c, _ := runWorkload(t, w, 1)
	if c.files == 0 || c.transients == 0 {
		t.Fatalf("empty run: %+v", c)
	}
	// Every object file depends on its cc, which depends on source+headers.
	objs := c.graph.FindByAttr(prov.AttrName, "/usr/src/linux/obj/f00000.o")
	if len(objs) != 1 {
		t.Fatalf("object file provenance missing: %v", objs)
	}
	anc := c.graph.Ancestors(objs[0])
	if len(anc) < w.HeaderFanIn {
		t.Fatalf("object ancestry too shallow: %d", len(anc))
	}
	// The image descends from every object file.
	images := c.graph.FindByAttr(prov.AttrName, "/usr/src/linux/vmlinux")
	if len(images) != 1 {
		t.Fatal("vmlinux provenance missing")
	}
	if got := len(c.graph.Ancestors(images[0])); got < 64 {
		t.Fatalf("vmlinux ancestry = %d, want >= sources", got)
	}
	if c.violation {
		t.Fatal("causal ordering violated")
	}
	if !c.graph.IsAcyclic() {
		t.Fatal("cyclic provenance")
	}
}

func TestBlastShape(t *testing.T) {
	w := DefaultBlast(0.004) // 2 jobs
	w.BatchesPerJob = 6
	c, _ := runWorkload(t, w, 2)
	// Pipeline churn: transient versions must dominate file versions.
	if c.transients <= c.files {
		t.Fatalf("blast transients (%d) must exceed files (%d)", c.transients, c.files)
	}
	// blastall versions chain: the out file's ancestry reaches the fasta db.
	outs := c.graph.FindByAttr(prov.AttrName, "/blast/results/job0000.out")
	if len(outs) == 0 {
		t.Fatal("job output provenance missing")
	}
	anc := c.graph.Ancestors(outs[len(outs)-1])
	foundDB := false
	for _, a := range anc {
		if a.Object == "/blast/db/nr.fasta" {
			foundDB = true
		}
	}
	if !foundDB {
		t.Fatalf("output ancestry (%d refs) does not reach the database", len(anc))
	}
	if c.violation || !c.graph.IsAcyclic() {
		t.Fatal("invariant violated")
	}
}

func TestProvChallengeShape(t *testing.T) {
	w := DefaultProvChallenge(0.0125) // 1 run
	c, _ := runWorkload(t, w, 3)
	// Stage counts: 4 align_warp + 4 reslice + 1 softmean + 3 slicer +
	// 3 convert = 15 processes.
	if got := len(c.graph.FindByAttr(prov.AttrName, "align_warp")); got != 4 {
		t.Fatalf("align_warp processes = %d", got)
	}
	if got := len(c.graph.FindByAttr(prov.AttrName, "softmean")); got != 1 {
		t.Fatalf("softmean processes = %d", got)
	}
	// The gif descends from every anatomy image (the diamond).
	gifs := c.graph.FindByAttr(prov.AttrName, "/fmri/run0000/atlas_x.gif")
	if len(gifs) != 1 {
		t.Fatal("gif provenance missing")
	}
	anc := c.graph.Ancestors(gifs[0])
	images := 0
	for _, a := range anc {
		if len(a.Object) > 7 && a.Object[len(a.Object)-4:] == ".img" {
			images++
		}
	}
	if images < 9 { // 4 anatomy + 4 resliced + atlas (reference may appear too)
		t.Fatalf("gif ancestry has %d images, want >= 9", images)
	}
	if c.violation || !c.graph.IsAcyclic() {
		t.Fatal("invariant violated")
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	w1 := DefaultProvChallenge(0.0125)
	c1, _ := runWorkload(t, w1, 42)
	w2 := DefaultProvChallenge(0.0125)
	c2, _ := runWorkload(t, w2, 42)
	if c1.files != c2.files || c1.records != c2.records || c1.dataBytes != c2.dataBytes {
		t.Fatalf("same seed diverged: %+v vs %+v", c1, c2)
	}
	c3, _ := runWorkload(t, DefaultProvChallenge(0.0125), 43)
	if c1.dataBytes == c3.dataBytes {
		t.Fatal("different seeds produced identical byte counts")
	}
}

// TestCombinedCalibration runs the paper profile at 1/50 scale and logs the
// Table 2 drivers. The assertions pin the calibrated shape: provenance
// overhead near 9.3%, roughly 0.8 >1 KB records per stored object, and a
// SimpleDB item count several times the object count.
func TestCombinedCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	c, _ := runWorkload(t, NewCombined(0.02), 2009)

	items := c.files + c.transients
	overhead := float64(c.provS3) / float64(c.dataBytes)
	bigPerFile := float64(c.big) / float64(c.files)
	itemsPerFile := float64(items) / float64(c.files)

	t.Logf("files=%d transients=%d items=%d", c.files, c.transients, items)
	t.Logf("data=%.1fMB provS3=%.1fMB overhead=%.1f%%",
		float64(c.dataBytes)/(1<<20), float64(c.provS3)/(1<<20), overhead*100)
	t.Logf("records=%d big=%d bigPerFile=%.2f itemsPerFile=%.2f",
		c.records, c.big, bigPerFile, itemsPerFile)

	if overhead < 0.05 || overhead > 0.20 {
		t.Errorf("provenance overhead %.1f%% outside 5–20%% (paper: 9.3%%)", overhead*100)
	}
	if bigPerFile < 0.4 || bigPerFile > 1.6 {
		t.Errorf("big records per object %.2f outside 0.4–1.6 (paper: 0.8)", bigPerFile)
	}
	if itemsPerFile < 2.5 || itemsPerFile > 7 {
		t.Errorf("items per object %.2f outside 2.5–7 (paper: 4.6)", itemsPerFile)
	}
	if c.violation || !c.graph.IsAcyclic() {
		t.Error("invariant violated")
	}
}
