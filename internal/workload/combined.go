package workload

import (
	"context"

	"passcloud/internal/pass"
	"passcloud/internal/sim"
)

// Combined is the paper's evaluation dataset: "We use the combined
// provenance generated from all three benchmarks as one single dataset"
// (§5). The default parameters are calibrated so a scale-1.0 run lands near
// the paper's aggregate measurements:
//
//	raw data            ~1.27 GB over ~31k stored objects
//	provenance overhead ~9–10% of raw data in S3 metadata form
//	>1 KB records       ~0.8 per stored object
//	SimpleDB items      several× the S3 object count (process versions)
//
// Scale multiplies object counts, not file sizes, so ratios survive
// downscaling; the default harness runs at 0.1.
type Combined struct {
	Compile   *LinuxCompile
	Blast     *Blast
	Challenge *ProvChallenge
	// Seed fixes the RNG used when Run is called through the Workload
	// interface with a shared RNG; kept for reproducibility bookkeeping.
	Seed int64
}

// NewCombined returns the calibrated paper profile at the given scale.
func NewCombined(scale float64) *Combined {
	c := &Combined{
		Compile:   DefaultLinuxCompile(scale),
		Blast:     DefaultBlast(scale),
		Challenge: DefaultProvChallenge(scale),
		Seed:      2009,
	}
	return c
}

// Name implements Workload.
func (c *Combined) Name() string { return "combined" }

// Run implements Workload.
func (c *Combined) Run(ctx context.Context, sys *pass.System, rng *sim.RNG) error {
	for _, w := range []Workload{c.Compile, c.Blast, c.Challenge} {
		if err := w.Run(ctx, sys, rng); err != nil {
			return err
		}
	}
	return sys.Sync(ctx)
}
