package workload

import (
	"context"
	"testing"

	"passcloud/internal/cloud"
)

// runLoadAt runs the standard load config for one (arch, shards) cell.
func runLoadAt(t *testing.T, arch string, shards int, cfg LoadConfig) *LoadResult {
	t.Helper()
	multi := cloud.NewMulti(cloud.Config{Seed: cfg.Seed})
	res, err := RunLoad(context.Background(), cfg, func(tenant int) (LoadTarget, error) {
		return BuildLoadTarget(multi, arch, tenant, shards)
	})
	if err != nil {
		t.Fatalf("%s x%d: %v", arch, shards, err)
	}
	return res
}

var loadTestCfg = LoadConfig{Tenants: 2, Writers: 2, Queriers: 1, Batches: 40, Seed: 2009}

// TestLoadDeterministicWriteMetrics: the gated metrics — events, total
// and per-shard op counts, modeled throughput — must be reproducible
// across runs regardless of goroutine interleaving: exactly for the
// first two architectures, within 0.2% for the WAL architecture (the
// commit daemon's receive count depends on queue interleaving).
func TestLoadDeterministicWriteMetrics(t *testing.T) {
	for _, arch := range LoadArchs {
		t.Run(arch, func(t *testing.T) {
			a := runLoadAt(t, arch, 4, loadTestCfg)
			b := runLoadAt(t, arch, 4, loadTestCfg)
			close := func(x, y int64) bool {
				if arch == "s3+sdb+sqs" {
					// The WAL drain's receive count shifts by a few ops
					// with queue interleaving (tx assembly across receive
					// pages); everything else is exact.
					d := x - y
					if d < 0 {
						d = -d
					}
					return d <= 6 || float64(d) <= 0.005*float64(x)
				}
				return x == y
			}
			if a.Events != b.Events || !close(a.WriteOps, b.WriteOps) {
				t.Fatalf("nondeterministic write metrics:\nrun A: events=%d ops=%d modeled=%v\nrun B: events=%d ops=%d modeled=%v",
					a.Events, a.WriteOps, a.ModeledWrite, b.Events, b.WriteOps, b.ModeledWrite)
			}
			for i := range a.PerShardOps {
				if !close(a.PerShardOps[i], b.PerShardOps[i]) {
					t.Fatalf("nondeterministic per-shard ops: %v vs %v", a.PerShardOps, b.PerShardOps)
				}
			}
			if a.Queries == 0 || a.Queries != b.Queries || a.QueryResults != b.QueryResults {
				t.Fatalf("query phase not deterministic: %d/%d vs %d/%d", a.Queries, a.QueryResults, b.Queries, b.QueryResults)
			}
		})
	}
}

// TestLoadShardScaling is the scale-out acceptance gate: at 4 shards the
// modeled aggregate write throughput must be at least 3x the 1-shard
// run's, with per-shard op counts summing to (nearly) the unsharded
// baseline — no hidden amplification. All three architectures are
// measured; the paper's first two must clear the bar.
func TestLoadShardScaling(t *testing.T) {
	for _, arch := range LoadArchs {
		t.Run(arch, func(t *testing.T) {
			flat := runLoadAt(t, arch, 1, loadTestCfg)
			sharded := runLoadAt(t, arch, 4, loadTestCfg)

			if flat.Events != sharded.Events {
				t.Fatalf("event counts diverge: %d unsharded vs %d sharded", flat.Events, sharded.Events)
			}
			var sum int64
			for _, ops := range sharded.PerShardOps {
				sum += ops
			}
			if sum != sharded.WriteOps {
				t.Fatalf("per-shard ops %v do not sum to the total %d", sharded.PerShardOps, sharded.WriteOps)
			}
			amplification := float64(sharded.WriteOps) / float64(flat.WriteOps)
			if amplification > 1.03 {
				t.Errorf("sharding amplified cloud ops by %.1f%% (%d -> %d)",
					100*(amplification-1), flat.WriteOps, sharded.WriteOps)
			}
			speedup := sharded.ThroughputEPS / flat.ThroughputEPS
			t.Logf("%s: 1-shard %.0f ev/s, 4-shard %.0f ev/s (%.2fx, amplification %.3f)",
				arch, flat.ThroughputEPS, sharded.ThroughputEPS, speedup, amplification)
			// The acceptance bar is >= 3x for at least the first two
			// architectures; the WAL design carries per-sub-batch
			// begin/commit overhead, so it gets headroom (today it clears
			// 3.4x anyway).
			bar := 3.0
			if arch == "s3+sdb+sqs" {
				bar = 2.5
			}
			if speedup < bar {
				t.Errorf("4-shard throughput only %.2fx the unsharded baseline, want >= %.1fx", speedup, bar)
			}
		})
	}
}

// TestLoadHotShardSkew: with 90% of traffic on shard 0 the harness must
// still complete and the hot shard must actually be hot.
func TestLoadHotShardSkew(t *testing.T) {
	cfg := loadTestCfg
	cfg.HotShardFraction = 0.9
	res := runLoadAt(t, "s3+sdb", 4, cfg)
	var sum int64
	for _, ops := range res.PerShardOps {
		sum += ops
	}
	hotShare := float64(res.PerShardOps[0]) / float64(sum)
	if hotShare < 0.6 {
		t.Fatalf("hot shard carries only %.0f%% of ops; skew routing is not working (%v)", 100*hotShare, res.PerShardOps)
	}
	if res.Events == 0 || res.Queries == 0 {
		t.Fatalf("skewed run did no work: %+v", res)
	}
}

// TestLoadHotShardTargetAndShift: the skew generator must heat an
// arbitrary shard, and a mid-run shift must move the hotspot — the
// moving hot arc the resharding controller chases.
func TestLoadHotShardTargetAndShift(t *testing.T) {
	cfg := loadTestCfg
	cfg.HotShardFraction = 0.9
	cfg.HotShard = 2
	res := runLoadAt(t, "s3+sdb", 4, cfg)
	var sum int64
	for _, ops := range res.PerShardOps {
		sum += ops
	}
	if share := float64(res.PerShardOps[2]) / float64(sum); share < 0.6 {
		t.Fatalf("shard 2 carries only %.0f%% of ops; targeted skew is not working (%v)", 100*share, res.PerShardOps)
	}

	shift := loadTestCfg
	shift.HotShardFraction = 0.9
	shift.HotShard = 1
	shift.HotShardShiftAt = shift.Batches / 2
	shift.HotShardShiftTo = 3
	res = runLoadAt(t, "s3+sdb", 4, shift)
	sum = 0
	for _, ops := range res.PerShardOps {
		sum += ops
	}
	s1 := float64(res.PerShardOps[1]) / float64(sum)
	s3 := float64(res.PerShardOps[3]) / float64(sum)
	if s1 < 0.25 || s3 < 0.25 {
		t.Fatalf("shifted hotspot did not land on both halves: shares %v", res.PerShardOps)
	}
	if s1+s3 < 0.6 {
		t.Fatalf("shifted hotspot leaked off the targeted shards: shares %v", res.PerShardOps)
	}
}

// TestLoadHistogram sanity-checks the percentile summary.
func TestLoadHistogram(t *testing.T) {
	h := histogramOf(nil)
	if h.Count != 0 {
		t.Fatal("empty histogram")
	}
	res := runLoadAt(t, "s3", 1, LoadConfig{Tenants: 1, Writers: 1, Batches: 6, Seed: 1})
	if res.FlushLatency.Count == 0 || res.FlushLatency.Max < res.FlushLatency.P50 {
		t.Fatalf("implausible latency histogram: %+v", res.FlushLatency)
	}
}
