package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"passcloud/internal/content"
	"passcloud/internal/core/integrity"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/replay"
	"passcloud/internal/sim"
)

// This file is the runnable-tool registry: every byte a workload tool
// writes is a pure function of the writing process version's recorded
// provenance (identity, argv, environment, pinned input versions) plus
// the output path. The generators derive their outputs through the same
// functions replay re-executes, so a faithful provenance capture replays
// byte-identically — and any capture bug (a dropped input edge, a mutated
// argument, a swapped version pin) changes the derived bytes and shows up
// as a digest mismatch.
//
// Sizes keep the generators' published distributions: a log-normal draw
// around a per-tool mean, seeded from the call digest instead of the
// workload RNG stream. Workload-configurable means travel in the recorded
// argv as "-s <bytes>" — provenance must carry everything the tool's
// output depends on, or the tool would not be replayable.

// toolFunc computes one tool's deterministic output chunk for a call.
type toolFunc func(call replay.Call, input replay.InputResolver) ([]byte, error)

// registry maps recorded tool names to their output functions. Tools that
// write nothing (cat, blastall, make) are deliberately absent: they never
// appear as a file's writer, and an unregistered writer is exactly what
// the unrunnable-tool divergence reports.
var registry = map[string]toolFunc{
	"formatdb":   runFormatdb,
	"tee":        sizedTool(15<<10, false),
	"perl":       sizedTool(4<<10, false),
	"cc":         sizedTool(16<<10, false),
	"ld":         sizedTool(6<<20, true),
	"align_warp": sizedTool(8<<10, false),
	"reslice":    imageTool(360 << 10),
	"softmean":   imageTool(360 << 10),
	"slicer":     sizedTool(90<<10, false),
	"convert":    sizedTool(40<<10, false),
}

// Tools is the workload tool registry as a replay.Runner — the first
// (and reference) runner implementation.
type Tools struct{}

// Run implements replay.Runner.
func (Tools) Run(call replay.Call, input replay.InputResolver) ([]byte, error) {
	fn := registry[call.Tool]
	if fn == nil {
		return nil, fmt.Errorf("%w: %q", replay.ErrUnknownTool, call.Tool)
	}
	return fn(call, input)
}

// DeriveOutput computes the bytes p's registered tool writes at path, as
// a pure function of the process's current-version records. Generators
// (and pass-through callers like Client.Process.WriteDerived) produce
// file content with it; replay re-executes the recorded records through
// the identical function — one implementation, both sides of the
// reproducibility contract.
func DeriveOutput(sys *pass.System, p *pass.Process, path string) ([]byte, error) {
	records := p.Records()
	tool := ""
	for _, r := range records {
		if r.Attr == prov.AttrName && r.Value.Kind == prov.KindString {
			tool = r.Value.Str
			break
		}
	}
	call := replay.Call{Tool: tool, Proc: p.Ref(), Records: records, Output: path}
	return Tools{}.Run(call, SystemResolver(sys))
}

// SystemResolver resolves pinned input versions against a live system's
// file state. At generation time every pin is the current version, so the
// resolver only has to check the pin still matches.
func SystemResolver(sys *pass.System) replay.InputResolver {
	return func(ref prov.Ref) ([]byte, error) {
		cur, ok := sys.CurrentVersion(string(ref.Object))
		if !ok {
			return nil, fmt.Errorf("workload: input %s unknown to system", ref)
		}
		if cur != ref {
			return nil, fmt.Errorf("workload: input %s not current (at %s)", ref, cur)
		}
		data, _ := sys.FileContent(string(ref.Object))
		return data, nil
	}
}

// toolWrite derives p's tool output for path and writes it — the
// generator-side half of the contract.
func toolWrite(sys *pass.System, p *pass.Process, path string, mode pass.WriteMode) error {
	data, err := DeriveOutput(sys, p, path)
	if err != nil {
		return err
	}
	return sys.Write(p, path, data, mode)
}

// sizedTool writes content.Bytes of a size centered on the "-s" argv
// value (or def): log-normal via the digest-seeded RNG, or the mean
// exactly when exact is set (linkers produce images of configured size,
// not samples).
func sizedTool(def int, exact bool) toolFunc {
	return func(call replay.Call, _ replay.InputResolver) ([]byte, error) {
		d := callDigest(call.Records, call.Output)
		size := argvSize(call, def)
		if !exact {
			size = sizeAround(digestRNG(d), size)
		}
		return derivedBytes(d, size), nil
	}
}

// imageTool handles the fMRI stages that write an image plus its ANALYZE
// header: ".hdr" outputs are the fixed 348-byte header, everything else
// is a log-normal image around the "-s" mean.
func imageTool(def int) toolFunc {
	return func(call replay.Call, _ replay.InputResolver) ([]byte, error) {
		d := callDigest(call.Records, call.Output)
		if strings.HasSuffix(call.Output, ".hdr") {
			return derivedBytes(d, 348), nil
		}
		return derivedBytes(d, sizeAround(digestRNG(d), argvSize(call, def))), nil
	}
}

// runFormatdb derives the indexed database files from the FASTA input
// named by the recorded "-i" argument: the header file (.phr) is 1/20th
// of the database, the index and sequence files a third each. It is the
// registry's data-dependent tool — its output sizes require resolving the
// pinned input version, which is how replay exercises missing-input
// detection.
func runFormatdb(call replay.Call, input replay.InputResolver) ([]byte, error) {
	argv := callArgv(call)
	fasta := ""
	for i := 0; i+1 < len(argv); i++ {
		if argv[i] == "-i" {
			fasta = argv[i+1]
			break
		}
	}
	if fasta == "" {
		return nil, fmt.Errorf("formatdb: no -i input in recorded argv %q", argv)
	}
	pin, ok := pinnedInput(call, fasta)
	if !ok {
		return nil, fmt.Errorf("formatdb: no recorded input edge for %s", fasta)
	}
	data, err := input(pin)
	if err != nil {
		return nil, fmt.Errorf("formatdb: %w", err)
	}
	size := len(data) / 3
	if strings.HasSuffix(call.Output, ".phr") {
		size = len(data) / 20
	}
	return derivedBytes(callDigest(call.Records, call.Output), size), nil
}

// callDigest fingerprints a call: the sorted, deduplicated record lines
// (attribute and value; integrity riders excluded — they are storage
// artifacts appended at flush, not capture provenance) plus the output
// path. Everything a tool's output may depend on is in here, and nothing
// else.
func callDigest(records []prov.Record, output string) [sha256.Size]byte {
	lines := make([]string, 0, len(records))
	seen := make(map[string]bool, len(records))
	for _, r := range records {
		if r.Attr == integrity.AttrChain || r.Attr == integrity.AttrRoot {
			continue
		}
		line := r.Attr + "\x00" + r.Value.String()
		if seen[line] {
			continue
		}
		seen[line] = true
		lines = append(lines, line)
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, line := range lines {
		h.Write([]byte(line))
		h.Write([]byte{0})
	}
	h.Write([]byte(output))
	var d [sha256.Size]byte
	copy(d[:], h.Sum(nil))
	return d
}

// derivedBytes expands a call digest into size deterministic bytes.
func derivedBytes(d [sha256.Size]byte, size int) []byte {
	if size < 1 {
		size = 1
	}
	return content.Bytes(binary.BigEndian.Uint64(d[0:8]), size)
}

// digestRNG seeds the size distribution from the second digest word, so
// size and content draws are independent.
func digestRNG(d [sha256.Size]byte) *sim.RNG {
	return sim.NewRNG(int64(binary.BigEndian.Uint64(d[8:16])))
}

// callArgv returns the recorded command line, split on spaces (the
// capture layer joins argv with single spaces).
func callArgv(call replay.Call) []string {
	for _, r := range call.Records {
		if r.Attr == prov.AttrArgv && r.Value.Kind == prov.KindString {
			return strings.Fields(r.Value.Str)
		}
	}
	return nil
}

// argvSize reads the "-s <bytes>" mean-size convention from the recorded
// argv, falling back to the tool's default.
func argvSize(call replay.Call, def int) int {
	argv := callArgv(call)
	for i := 0; i+1 < len(argv); i++ {
		if argv[i] == "-s" {
			if n, err := strconv.Atoi(argv[i+1]); err == nil && n > 0 {
				return n
			}
		}
	}
	return def
}

// pinnedInput finds the recorded input edge whose object matches path.
func pinnedInput(call replay.Call, path string) (prov.Ref, bool) {
	for _, r := range call.Records {
		if r.Attr == prov.AttrInput && r.Value.Kind == prov.KindRef &&
			string(r.Value.Ref.Object) == path {
			return r.Value.Ref, true
		}
	}
	return prov.Ref{}, false
}

// argvWithSize appends the "-s <bytes>" convention to a command line: the
// configured mean must ride in recorded provenance for the tool to be
// replayable.
func argvWithSize(argv []string, mean int) []string {
	return append(argv, "-s", strconv.Itoa(mean))
}
