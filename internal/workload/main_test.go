package workload

import (
	"testing"

	"passcloud/internal/leakcheck"
)

// TestMain fails the binary if the sustained-load harness's writer and
// querier fleets leave goroutines behind after the tests pass.
func TestMain(m *testing.M) { leakcheck.Main(m) }
