package workload

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/content"
	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// This file is the sustained-load harness: an open-loop multi-tenant
// generator that drives a (possibly sharded) provenance store with
// tenants × writers concurrent PASS clients and then tenants × queriers
// concurrent readers, and reports throughput two ways:
//
//   - wall-clock (real goroutine concurrency against the in-process sim —
//     informative, machine-dependent);
//   - modeled (the WAN2009 latency model applied per namespace, makespan =
//     the slowest namespace — deterministic, which is what the CI scale
//     gate compares across commits).
//
// "Open loop" here means the offered workload is fixed by the seed — which
// objects, which bytes, which order per writer — independent of how the
// store behaves; writers issue their flushes back to back, so the
// measurement is the saturation throughput of the write path.
//
// The write phase and the query phase are separated by a quiescent drain:
// write-phase operation counts are therefore deterministic for a given
// seed and configuration (interleaving can reorder but not add cloud
// ops) on the S3-only and S3+SimpleDB architectures. The WAL architecture
// is near-deterministic: its commit daemon's receive count depends on the
// order writers' messages interleaved on the queue, which can shift the
// total by a few ops (<0.1%) — benchdiff's tolerance absorbs that.

// LoadConfig parameterizes one sustained-load run. The zero value of any
// field selects its default.
type LoadConfig struct {
	// Tenants is the number of isolated tenants (default 2). Each tenant
	// gets its own store (its own namespaces) from the builder.
	Tenants int
	// Writers is the number of concurrent writer clients per tenant
	// (default 2). Writers share the tenant's store, as PASS clients of
	// one repository do.
	Writers int
	// Queriers is the number of concurrent reader clients per tenant in
	// the query phase (default 1).
	Queriers int
	// Batches is the number of file closes each writer issues (default 40).
	Batches int
	// PayloadBytes sizes each written file (default 256). Kept small so
	// ride-along provenance never spills, which keeps operation counts
	// independent of goroutine interleaving.
	PayloadBytes int
	// Seed fixes the generated workload.
	Seed int64
	// HotShardFraction, when positive, routes that fraction of each
	// writer's files onto the hot shard (hot-shard skew). Requires the
	// store to expose placement (ShardPlacer); ignored otherwise.
	HotShardFraction float64
	// HotShard selects which shard receives the skewed fraction
	// (default 0). Out-of-range values wrap modulo the shard count.
	HotShard int
	// HotShardShiftAt, when positive, moves the hotspot mid-run: batches
	// with index >= HotShardShiftAt heat HotShardShiftTo instead of
	// HotShard — a moving hot arc for the resharding controller to chase.
	HotShardShiftAt int
	// HotShardShiftTo is the shard the hotspot moves to at the shift
	// point (wraps like HotShard).
	HotShardShiftTo int
	// Placer, when non-nil, overrides the store's own placement for skew
	// name generation. The rebalance bench freezes the pre-migration ring
	// here so phase-2 traffic replays the pre-split pattern against the
	// flipped ring.
	Placer ShardPlacer
	// Latency is the request latency model for the modeled throughput
	// (default billing.WAN2009).
	Latency billing.LatencyModel
}

// withDefaults fills unset fields.
func (cfg LoadConfig) withDefaults() LoadConfig {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 2
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 2
	}
	if cfg.Queriers <= 0 {
		cfg.Queriers = 1
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 40
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 256
	}
	if cfg.Latency.Concurrency == 0 {
		cfg.Latency = billing.WAN2009
	}
	return cfg
}

// ShardPlacer is implemented by sharded stores that can report an
// object's home shard (shard.Router does). The harness uses it to build
// hot-shard workloads and per-shard op attribution.
type ShardPlacer interface {
	ShardFor(object prov.ObjectID) int
	NumShards() int
}

// LoadTarget is one tenant's store under test, with the metering handles
// the harness reads. Build one per tenant.
type LoadTarget struct {
	// Store receives the tenant's traffic. Required.
	Store core.Store
	// Clouds are the namespaces backing the store, indexed by shard (one
	// entry for an unsharded store). Required: they are the billing keys
	// per-shard op counts and the modeled makespan read from.
	Clouds []*cloud.Cloud
	// Drain, when non-nil, brings the store to quiescence after the write
	// phase (the WAL architecture's commit daemon).
	Drain func(context.Context) error
}

// Histogram summarizes an observed latency distribution.
type Histogram struct {
	Count              int
	P50, P90, P99, Max time.Duration
}

// histogramOf computes percentile summaries (nearest-rank).
func histogramOf(samples []time.Duration) Histogram {
	h := Histogram{Count: len(samples)}
	if len(samples) == 0 {
		return h
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	h.P50, h.P90, h.P99 = rank(0.50), rank(0.90), rank(0.99)
	h.Max = samples[len(samples)-1]
	return h
}

// LoadResult is one run's measurements.
type LoadResult struct {
	// Configuration echo (post-default).
	Tenants, Writers, Queriers, Batches int
	// Shards is the shard count of the tenant stores (1 when unsharded).
	Shards int

	// Events is the number of flush events durably written; FlushBatches
	// the number of store-level flushes that carried them.
	Events, FlushBatches int64
	// WriteOps is the total cloud operation count of the write phase
	// (including drains), summed over every namespace; PerShardOps splits
	// it by shard index (summed across tenants). Deterministic per seed.
	WriteOps    int64
	PerShardOps []int64
	// BytesIn is the bytes uploaded during the write phase.
	BytesIn int64

	// ModeledWrite is the write phase's modeled elapsed time: the latency
	// model applied to each namespace's usage, makespan over namespaces —
	// tenants and shards serve in parallel, requests within a namespace
	// contend. Deterministic per seed.
	ModeledWrite time.Duration
	// ThroughputEPS is Events per modeled second — the scale gate metric.
	ThroughputEPS float64
	// Wall is the real elapsed time of the write phase (informative only).
	Wall time.Duration
	// FlushLatency is the wall-clock per-flush distribution (informative).
	FlushLatency Histogram

	// Queries and QueryResults count the query phase's work.
	Queries, QueryResults int64
}

// RunLoad executes one sustained-load run: build one target per tenant,
// drive the write phase to quiescence, snapshot the (deterministic) write
// metrics, then run the query phase.
func RunLoad(ctx context.Context, cfg LoadConfig, build func(tenant int) (LoadTarget, error)) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	targets := make([]LoadTarget, cfg.Tenants)
	for t := 0; t < cfg.Tenants; t++ {
		tg, err := build(t)
		if err != nil {
			return nil, fmt.Errorf("workload: build tenant %d: %w", t, err)
		}
		if tg.Store == nil || len(tg.Clouds) == 0 {
			return nil, fmt.Errorf("workload: tenant %d target missing store or clouds", t)
		}
		targets[t] = tg
	}
	res := &LoadResult{
		Tenants: cfg.Tenants, Writers: cfg.Writers, Queriers: cfg.Queriers,
		Batches: cfg.Batches, Shards: len(targets[0].Clouds),
	}
	// Baseline per-namespace usage: resource creation (buckets, domains,
	// queues) happened at build time and is not write-path load.
	baseline := make([][]billing.Usage, cfg.Tenants)
	for t, tg := range targets {
		baseline[t] = make([]billing.Usage, len(tg.Clouds))
		for s, cl := range tg.Clouds {
			baseline[t][s] = cl.Usage()
		}
	}

	var events, batches atomic.Int64
	var latMu sync.Mutex
	var latencies []time.Duration

	// Each writer is one PASS client: its own observed process tree, its
	// own namespace, flushing into the shared tenant store.
	type writer struct {
		tenant int
		sys    *pass.System
		run    func(context.Context) error
	}
	var writers []writer
	for t := 0; t < cfg.Tenants; t++ {
		tg := targets[t]
		store := tg.Store
		flush := func(ctx context.Context, batch []pass.FlushEvent) error {
			//passvet:allow simclock -- wall-latency histogram: these measure the host's real flush latency by design; every simulated behaviour still rides sim.Clock
			start := time.Now()
			err := store.PutBatch(ctx, batch)
			//passvet:allow simclock -- wall-latency histogram: real elapsed time is the measurement
			d := time.Since(start)
			latMu.Lock()
			latencies = append(latencies, d)
			latMu.Unlock()
			if err != nil {
				return err
			}
			events.Add(int64(len(batch)))
			batches.Add(1)
			return nil
		}
		for w := 0; w < cfg.Writers; w++ {
			t, w := t, w
			sys := pass.NewSystem(pass.Config{
				Kernel:    "2.6.23",
				Namespace: fmt.Sprintf("t%d-w%d", t, w),
				Flush:     flush,
			})
			names := objectNames(cfg, tg.Store, t, w)
			writers = append(writers, writer{tenant: t, sys: sys, run: func(ctx context.Context) error {
				return runWriter(ctx, cfg, sys, names, t, w)
			}})
		}
	}

	// --- write phase ---------------------------------------------------------
	//passvet:allow simclock -- Result.Wall reports the harness's real wall time alongside the modeled makespan; the modeled numbers themselves come from the meters
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, len(writers))
	for _, w := range writers {
		wg.Add(1)
		go func(w writer) {
			defer wg.Done()
			if err := w.run(ctx); err != nil {
				errc <- fmt.Errorf("workload: tenant %d writer: %w", w.tenant, err)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return nil, err
	}
	// Quiescent drain, sequential so trailing markers and commit pushes
	// meter deterministically.
	for _, w := range writers {
		if err := w.sys.Sync(ctx); err != nil {
			return nil, fmt.Errorf("workload: final sync: %w", err)
		}
	}
	for t := range targets {
		if err := core.SyncStore(ctx, targets[t].Store); err != nil {
			return nil, fmt.Errorf("workload: store sync: %w", err)
		}
		if targets[t].Drain != nil {
			if err := targets[t].Drain(ctx); err != nil {
				return nil, fmt.Errorf("workload: drain tenant %d: %w", t, err)
			}
		}
	}
	//passvet:allow simclock -- Result.Wall reports the harness's real wall time alongside the modeled makespan
	res.Wall = time.Since(start)
	res.Events = events.Load()
	res.FlushBatches = batches.Load()
	res.FlushLatency = histogramOf(latencies)

	// Deterministic write metrics from the per-namespace meters: the
	// write phase's delta over the build-time baseline.
	res.PerShardOps = make([]int64, res.Shards)
	var makespan time.Duration
	for t, tg := range targets {
		for s, cl := range tg.Clouds {
			u := cl.Usage().Sub(baseline[t][s])
			ops := u.TotalOps()
			res.WriteOps += ops
			if s < len(res.PerShardOps) {
				res.PerShardOps[s] += ops
			}
			res.BytesIn += u.BytesIn(billing.S3) + u.BytesIn(billing.SimpleDB) + u.BytesIn(billing.SQS)
			if d := cfg.Latency.Estimate(u); d > makespan {
				makespan = d
			}
		}
	}
	res.ModeledWrite = makespan
	if makespan > 0 {
		res.ThroughputEPS = float64(res.Events) / makespan.Seconds()
	}

	// --- query phase ---------------------------------------------------------
	var queries, results atomic.Int64
	var qwg sync.WaitGroup
	qerrc := make(chan error, cfg.Tenants*cfg.Queriers)
	for t := 0; t < cfg.Tenants; t++ {
		q, ok := targets[t].Store.(core.Querier)
		if !ok {
			continue
		}
		for k := 0; k < cfg.Queriers; k++ {
			t := t
			qwg.Add(1)
			go func() {
				defer qwg.Done()
				for _, desc := range querySet(t) {
					n := int64(0)
					for _, err := range q.Query(ctx, desc) {
						if err != nil {
							qerrc <- fmt.Errorf("workload: tenant %d query: %w", t, err)
							return
						}
						n++
					}
					queries.Add(1)
					results.Add(n)
				}
			}()
		}
	}
	qwg.Wait()
	close(qerrc)
	for err := range qerrc {
		return nil, err
	}
	res.Queries = queries.Load()
	res.QueryResults = results.Load()
	return res, nil
}

// objectNames precomputes writer (t, w)'s file paths. With hot-shard skew
// requested and a placement-aware store, names are chosen by probing the
// ring so the configured fraction lands on the hot shard (which may shift
// mid-run); otherwise names are taken as generated (consistent hashing
// spreads them).
func objectNames(cfg LoadConfig, store core.Store, t, w int) []string {
	placer, _ := store.(ShardPlacer)
	if cfg.Placer != nil {
		placer = cfg.Placer
	}
	skew := cfg.HotShardFraction > 0 && placer != nil && placer.NumShards() > 1
	names := make([]string, cfg.Batches)
	probe := 0
	rng := loadRNG(cfg.Seed, t, w)
	for b := range names {
		if !skew {
			names[b] = fmt.Sprintf("/t%d/w%d/f%d", t, w, b)
			continue
		}
		target := cfg.HotShard
		if cfg.HotShardShiftAt > 0 && b >= cfg.HotShardShiftAt {
			target = cfg.HotShardShiftTo
		}
		target = ((target % placer.NumShards()) + placer.NumShards()) % placer.NumShards()
		hot := rng.Float64() < cfg.HotShardFraction
		for {
			cand := fmt.Sprintf("/t%d/w%d/f%d-%d", t, w, b, probe)
			probe++
			if (placer.ShardFor(prov.ObjectID(cand)) == target) == hot {
				names[b] = cand
				break
			}
		}
	}
	return names
}

// runWriter drives one writer's deterministic batch sequence: a generator
// process writes each file, re-reading an earlier output every few
// batches so lineage chains form (and cross shards).
func runWriter(ctx context.Context, cfg LoadConfig, sys *pass.System, names []string, t, w int) error {
	rng := loadRNG(cfg.Seed+1, t, w)
	var proc *pass.Process
	for b, name := range names {
		if b%8 == 0 {
			if proc != nil {
				sys.Exit(proc)
			}
			proc = sys.Exec(nil, pass.ExecSpec{
				Name: "loadgen",
				Argv: []string{"loadgen", fmt.Sprintf("-t%d", t), fmt.Sprintf("-w%d", w)},
			})
		}
		if b > 0 && b%3 == 0 {
			if err := sys.Read(proc, names[rng.Intn(b)]); err != nil {
				return err
			}
		}
		payload := content.Bytes(uint64(cfg.Seed)+uint64(t)<<32+uint64(w)<<16+uint64(b), cfg.PayloadBytes)
		if err := sys.Write(proc, name, payload, pass.Truncate); err != nil {
			return err
		}
		if err := sys.Close(ctx, proc, name); err != nil {
			return err
		}
	}
	if proc != nil {
		sys.Exit(proc)
	}
	return nil
}

// querySet is the fixed per-querier descriptor sequence: a repository
// listing, a tenant-prefix filter, and a dependents lookup — repeated so
// warm-cache behaviour shows in the phase's wall time.
func querySet(tenant int) []prov.Query {
	prefix := fmt.Sprintf("/t%d/", tenant)
	return []prov.Query{
		{Type: prov.TypeFile, Projection: prov.ProjectRefs},
		{RefPrefix: prefix, Projection: prov.ProjectRefs},
		prov.QDependents(prov.ObjectID(fmt.Sprintf("/t%d/w0/f0", tenant))),
		{Type: prov.TypeFile, Projection: prov.ProjectRefs},
		{RefPrefix: prefix, Projection: prov.ProjectFull},
	}
}

// loadRNG derives a writer-scoped deterministic random stream.
func loadRNG(seed int64, t, w int) *loadRand {
	return &loadRand{state: uint64(seed)*2654435761 + uint64(t)<<40 + uint64(w)<<20 + 0x9e3779b97f4a7c15}
}

// loadRand is a tiny splitmix64 stream — enough for name skew and read
// choices without sharing sim.RNG locks across writers.
type loadRand struct{ state uint64 }

func (r *loadRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (r *loadRand) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// Intn returns a uniform int in [0, n).
func (r *loadRand) Intn(n int) int { return int(r.next() % uint64(n)) }
