package workload

import (
	"context"

	"fmt"

	"passcloud/internal/pass"
	"passcloud/internal/sim"
)

// ProvChallenge models the paper's third workload [10]: the First Provenance
// Challenge fMRI workflow. Each run takes four anatomy images plus a
// reference, and proceeds through four stages:
//
//	align_warp (×4)  anatomy image + header + reference -> warp params
//	reslice    (×4)  warp params                       -> resliced image + header
//	softmean   (×1)  all resliced images               -> atlas image + header
//	slicer     (×3)  atlas                             -> 2D slice
//	convert    (×3)  slice                             -> graphic
//
// The workflow is the community's canonical lineage benchmark; its diamond
// ancestry (everything funnels through softmean) exercises ancestor and
// descendant queries.
type ProvChallenge struct {
	// Runs is the number of complete workflow executions at scale 1.0.
	Runs int
	// ImageSize is the anatomy image size in bytes.
	ImageSize int
	// BigEnvFraction is the fraction of processes with >1 KB environments.
	BigEnvFraction float64
	// Scale multiplies Runs (1.0 = paper scale).
	Scale float64
}

// DefaultProvChallenge returns the configuration used for the paper dataset.
func DefaultProvChallenge(scale float64) *ProvChallenge {
	return &ProvChallenge{
		Runs:           80,
		ImageSize:      360 << 10,
		BigEnvFraction: 0.22,
		Scale:          scale,
	}
}

// Name implements Workload.
func (w *ProvChallenge) Name() string { return "prov-challenge" }

// Run implements Workload.
func (w *ProvChallenge) Run(ctx context.Context, sys *pass.System, rng *sim.RNG) error {
	nRuns := scaleCount(w.Runs, w.Scale, 1)

	const reference = "/fmri/reference.img"
	if err := sys.Ingest(ctx, reference, payload(rng, w.ImageSize)); err != nil {
		return err
	}

	for run := 0; run < nRuns; run++ {
		dir := fmt.Sprintf("/fmri/run%04d", run)

		// Stage 0: the four anatomy images and headers pre-exist.
		var images, headers [4]string
		for i := 0; i < 4; i++ {
			images[i] = fmt.Sprintf("%s/anatomy%d.img", dir, i+1)
			headers[i] = fmt.Sprintf("%s/anatomy%d.hdr", dir, i+1)
			if err := sys.Ingest(ctx, images[i], payload(rng, sizeAround(rng, w.ImageSize))); err != nil {
				return err
			}
			if err := sys.Ingest(ctx, headers[i], payload(rng, 348)); err != nil { // ANALYZE header size
				return err
			}
		}

		// Stage 1: align_warp.
		var warps [4]string
		for i := 0; i < 4; i++ {
			aw := sys.Exec(nil, pass.ExecSpec{
				Name: "align_warp",
				Argv: []string{"align_warp", images[i], reference, "-m", "12"},
				Env:  env(rng, envSize(rng, w.BigEnvFraction)),
			})
			for _, in := range []string{images[i], headers[i], reference} {
				if err := sys.Read(aw, in); err != nil {
					return err
				}
			}
			warps[i] = fmt.Sprintf("%s/warp%d.warp", dir, i+1)
			if err := toolWrite(sys, aw, warps[i], pass.Truncate); err != nil {
				return err
			}
			if err := sys.Close(ctx, aw, warps[i]); err != nil {
				return err
			}
			sys.Exit(aw)
		}

		// Stage 2: reslice.
		var resliced [4]string
		for i := 0; i < 4; i++ {
			rs := sys.Exec(nil, pass.ExecSpec{
				Name: "reslice",
				Argv: argvWithSize([]string{"reslice", warps[i]}, w.ImageSize),
				Env:  env(rng, envSize(rng, w.BigEnvFraction)),
			})
			if err := sys.Read(rs, warps[i]); err != nil {
				return err
			}
			if err := sys.Read(rs, images[i]); err != nil {
				return err
			}
			resliced[i] = fmt.Sprintf("%s/resliced%d.img", dir, i+1)
			hdr := fmt.Sprintf("%s/resliced%d.hdr", dir, i+1)
			if err := toolWrite(sys, rs, resliced[i], pass.Truncate); err != nil {
				return err
			}
			if err := toolWrite(sys, rs, hdr, pass.Truncate); err != nil {
				return err
			}
			if err := sys.Close(ctx, rs, resliced[i]); err != nil {
				return err
			}
			if err := sys.Close(ctx, rs, hdr); err != nil {
				return err
			}
			sys.Exit(rs)
		}

		// Stage 3: softmean produces the atlas.
		sm := sys.Exec(nil, pass.ExecSpec{
			Name: "softmean",
			Argv: argvWithSize([]string{"softmean", "atlas.img", "y", "null"}, w.ImageSize),
			Env:  env(rng, envSize(rng, w.BigEnvFraction)),
		})
		for i := 0; i < 4; i++ {
			if err := sys.Read(sm, resliced[i]); err != nil {
				return err
			}
		}
		atlas := fmt.Sprintf("%s/atlas.img", dir)
		atlasHdr := fmt.Sprintf("%s/atlas.hdr", dir)
		if err := toolWrite(sys, sm, atlas, pass.Truncate); err != nil {
			return err
		}
		if err := toolWrite(sys, sm, atlasHdr, pass.Truncate); err != nil {
			return err
		}
		if err := sys.Close(ctx, sm, atlas); err != nil {
			return err
		}
		if err := sys.Close(ctx, sm, atlasHdr); err != nil {
			return err
		}
		sys.Exit(sm)

		// Stage 4: slicer + convert along three axes.
		for i, axis := range []string{"x", "y", "z"} {
			sl := sys.Exec(nil, pass.ExecSpec{
				Name: "slicer",
				Argv: []string{"slicer", atlas, "-" + axis, ".5"},
				Env:  env(rng, envSize(rng, w.BigEnvFraction)),
			})
			if err := sys.Read(sl, atlas); err != nil {
				return err
			}
			if err := sys.Read(sl, atlasHdr); err != nil {
				return err
			}
			slice := fmt.Sprintf("%s/slice_%s.pgm", dir, axis)
			if err := toolWrite(sys, sl, slice, pass.Truncate); err != nil {
				return err
			}
			if err := sys.Close(ctx, sl, slice); err != nil {
				return err
			}
			sys.Exit(sl)

			cv := sys.Exec(nil, pass.ExecSpec{
				Name: "convert",
				Argv: []string{"convert", slice, fmt.Sprintf("atlas_%s.gif", axis)},
				Env:  env(rng, envSize(rng, w.BigEnvFraction)),
			})
			if err := sys.Read(cv, slice); err != nil {
				return err
			}
			gif := fmt.Sprintf("%s/atlas_%s.gif", dir, axis)
			if err := toolWrite(sys, cv, gif, pass.Truncate); err != nil {
				return err
			}
			if err := sys.Close(ctx, cv, gif); err != nil {
				return err
			}
			sys.Exit(cv)
			_ = i
		}
	}
	return sys.Sync(ctx)
}
