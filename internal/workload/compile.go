package workload

import (
	"context"

	"fmt"

	"passcloud/internal/pass"
	"passcloud/internal/sim"
)

// LinuxCompile models the paper's first workload: building a kernel tree.
// A make process spawns one cc per translation unit; each cc reads its
// source file and a set of shared headers and writes an object file; a final
// ld links every object file into the kernel image.
//
// The provenance shape this produces — wide fan-in from shared headers, one
// process per output, a single huge sink — is what makes compile workloads a
// provenance stress test.
type LinuxCompile struct {
	// Sources is the number of .c translation units at scale 1.0.
	Sources int
	// Headers is the number of shared .h files at scale 1.0.
	Headers int
	// HeaderFanIn is how many headers each cc reads.
	HeaderFanIn int
	// MeanSourceSize, MeanObjectSize are mean file sizes in bytes.
	MeanSourceSize, MeanObjectSize int
	// ImageSize is the final linked image size in bytes.
	ImageSize int
	// BigEnvFraction is the fraction of compiler processes with >1 KB
	// environments.
	BigEnvFraction float64
	// Scale multiplies the file counts (1.0 = paper scale).
	Scale float64
}

// DefaultLinuxCompile returns the configuration used for the paper dataset.
func DefaultLinuxCompile(scale float64) *LinuxCompile {
	return &LinuxCompile{
		Sources:        3200,
		Headers:        620,
		HeaderFanIn:    14,
		MeanSourceSize: 10 << 10,
		MeanObjectSize: 16 << 10,
		ImageSize:      6 << 20,
		BigEnvFraction: 0.22,
		Scale:          scale,
	}
}

// Name implements Workload.
func (w *LinuxCompile) Name() string { return "linux-compile" }

// Run implements Workload.
func (w *LinuxCompile) Run(ctx context.Context, sys *pass.System, rng *sim.RNG) error {
	nSrc := scaleCount(w.Sources, w.Scale, 3)
	nHdr := scaleCount(w.Headers, w.Scale, 2)

	// The source tree pre-exists (checked out, not generated): ingest it.
	headers := make([]string, nHdr)
	for i := range headers {
		headers[i] = fmt.Sprintf("/usr/src/linux/include/h%04d.h", i)
		if err := sys.Ingest(ctx, headers[i], payload(rng, sizeAround(rng, 4<<10))); err != nil {
			return err
		}
	}
	sources := make([]string, nSrc)
	for i := range sources {
		sources[i] = fmt.Sprintf("/usr/src/linux/src/f%05d.c", i)
		if err := sys.Ingest(ctx, sources[i], payload(rng, sizeAround(rng, w.MeanSourceSize))); err != nil {
			return err
		}
	}

	make_ := sys.Exec(nil, pass.ExecSpec{
		Name: "make",
		Argv: []string{"make", "-j8", "vmlinux"},
		Env:  env(rng, envSize(rng, w.BigEnvFraction)),
	})

	objects := make([]string, nSrc)
	for i, src := range sources {
		cc := sys.Exec(make_, pass.ExecSpec{
			Name: "cc",
			Argv: argvWithSize([]string{"cc", "-O2", "-c", src}, w.MeanObjectSize),
			Env:  env(rng, envSize(rng, w.BigEnvFraction)),
		})
		if err := sys.Read(cc, src); err != nil {
			return err
		}
		for h := 0; h < w.HeaderFanIn && h < nHdr; h++ {
			if err := sys.Read(cc, headers[(i+h*7)%nHdr]); err != nil {
				return err
			}
		}
		objects[i] = fmt.Sprintf("/usr/src/linux/obj/f%05d.o", i)
		if err := toolWrite(sys, cc, objects[i], pass.Truncate); err != nil {
			return err
		}
		if err := sys.Close(ctx, cc, objects[i]); err != nil {
			return err
		}
		sys.Exit(cc)
	}

	ld := sys.Exec(make_, pass.ExecSpec{
		Name: "ld",
		Argv: argvWithSize([]string{"ld", "-o", "vmlinux"}, w.ImageSize),
		Env:  env(rng, envSize(rng, w.BigEnvFraction)),
	})
	for _, obj := range objects {
		if err := sys.Read(ld, obj); err != nil {
			return err
		}
	}
	if err := toolWrite(sys, ld, "/usr/src/linux/vmlinux", pass.Truncate); err != nil {
		return err
	}
	if err := sys.Close(ctx, ld, "/usr/src/linux/vmlinux"); err != nil {
		return err
	}
	sys.Exit(ld)
	sys.Exit(make_)
	return sys.Sync(ctx)
}
