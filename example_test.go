package passcloud_test

import (
	"context"
	"fmt"
	"log"

	"passcloud"
)

// exampleClient loads a tiny repository: one ingested dataset, one
// process ("blast") deriving an output from it.
func exampleClient(arch passcloud.Architecture) *passcloud.Client {
	ctx := context.Background()
	client, err := passcloud.New(passcloud.Options{Architecture: arch, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Ingest(ctx, "/data/reads.fasta", []byte("ACGT")); err != nil {
		log.Fatal(err)
	}
	p := client.Exec(nil, passcloud.ProcessSpec{Name: "blast", Argv: []string{"blast", "-p"}})
	if err := p.Read("/data/reads.fasta"); err != nil {
		log.Fatal(err)
	}
	if err := p.Write("/out/hits", []byte("hit1\nhit2\n")); err != nil {
		log.Fatal(err)
	}
	if err := p.Close(ctx, "/out/hits"); err != nil {
		log.Fatal(err)
	}
	p.Exit()
	if err := client.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	client.Settle()
	return client
}

// ExampleClient_Replay re-executes a recorded lineage on a fresh sandbox
// tenant and diffs the re-derived bytes against the repository — the
// divergence oracle for provenance-capture bugs. WriteDerived makes the
// write replayable: the bytes are a pure function of the recorded call.
func ExampleClient_Replay() {
	ctx := context.Background()
	client, err := passcloud.New(passcloud.Options{Architecture: passcloud.S3SimpleDB, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Ingest(ctx, "/data/anatomy.img", []byte("scanned volume")); err != nil {
		log.Fatal(err)
	}
	p := client.Exec(nil, passcloud.ProcessSpec{Name: "align_warp", Argv: []string{"align_warp", "-m", "12"}})
	if err := p.Read("/data/anatomy.img"); err != nil {
		log.Fatal(err)
	}
	if err := p.WriteDerived("/out/warp.warp"); err != nil {
		log.Fatal(err)
	}
	if err := p.Close(ctx, "/out/warp.warp"); err != nil {
		log.Fatal(err)
	}
	p.Exit()
	if err := client.Sync(ctx); err != nil {
		log.Fatal(err)
	}

	rep, err := client.Replay(ctx, "/out/warp.warp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean=%v derived=%d sources=%d processes=%d compared=%d\n",
		rep.Clean(), rep.Subjects, rep.Sources, rep.Processes, rep.Compared)
	// Output:
	// clean=true derived=1 sources=1 processes=1 compared=2
}

// ExampleClient_Search runs one composable query: which files did the
// tool "blast" write? (The paper's Q.2, parameterized.)
func ExampleClient_Search() {
	ctx := context.Background()
	client := exampleClient(passcloud.S3SimpleDB)

	res, err := client.Search(ctx, passcloud.QuerySpec{
		Tool:     "blast",
		Type:     "file",
		RefsOnly: true, // no record fetch: non-matching provenance is never touched
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Entries {
		fmt.Println(e.Ref)
	}
	// Output:
	// /out/hits:0
}

// ExampleClient_Explain predicts a query's cloud cost before running it:
// the Table 3 cost model generalized to arbitrary descriptors.
func ExampleClient_Explain() {
	client := exampleClient(passcloud.S3SimpleDB)

	plan, err := client.Explain(passcloud.QuerySpec{
		Tool:     "blast",
		Type:     "file",
		RefsOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy: %s\n", plan.Strategy)
	fmt.Printf("predicted cloud ops: %d (exact: %v)\n", plan.EstOps, plan.Exact)
	fmt.Printf("pushdown: %s\n", plan.Pushdown[0])
	// Output:
	// strategy: indexed-two-phase
	// predicted cloud ops: 2 (exact: true)
	// pushdown: ['name' = 'blast']
}
