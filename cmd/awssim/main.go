// Command awssim serves the simulated AWS region (S3, SimpleDB, SQS) over
// HTTP, so the substrate behind the provenance architectures can be poked
// directly:
//
//	awssim -addr :8080
//	curl -X PUT  localhost:8080/s3/mybucket
//	curl -X PUT  localhost:8080/s3/mybucket/hello -d 'world' \
//	     -H 'X-Amz-Meta-Prov: input=bar:2'
//	curl          localhost:8080/s3/mybucket/hello -i
//	curl -X POST 'localhost:8080/sdb' -d 'Action=CreateDomain&DomainName=prov'
//	curl -X POST 'localhost:8080/sqs' -d 'Action=CreateQueue&QueueName=wal'
//	curl          localhost:8080/usage
//
// The region uses the wall clock, so eventual-consistency delays (if
// enabled with -delay) resolve in real time.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/httpapi"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	seed := flag.Int64("seed", 2009, "random seed for the region")
	delay := flag.Duration("delay", 0, "max eventual-consistency propagation delay (0 = strong)")
	flag.Parse()

	region := cloud.New(cloud.Config{Seed: *seed, MaxDelay: *delay})
	if *delay > 0 {
		// With a wall-clock-advancing region the virtual clock must track
		// real time so propagation horizons pass on their own.
		go func() {
			for {
				time.Sleep(100 * time.Millisecond)
				region.Clock.Advance(100 * time.Millisecond)
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "awssim: serving simulated S3/SimpleDB/SQS on %s (delay %v)\n", *addr, *delay)
	if err := http.ListenAndServe(*addr, httpapi.New(region)); err != nil {
		log.Fatal(err)
	}
}
