package main

import (
	"testing"

	"passcloud/internal/analysis"
)

// TestSelectAnalyzers covers the -only flag's selection semantics.
func TestSelectAnalyzers(t *testing.T) {
	suite := analysis.All()

	all, err := selectAnalyzers(suite, "")
	if err != nil || len(all) != len(suite) {
		t.Fatalf("empty -only: got %d analyzers, err %v; want the full suite", len(all), err)
	}

	sel, err := selectAnalyzers(suite, "meterkey, ctxflow")
	if err != nil {
		t.Fatalf("selecting two analyzers: %v", err)
	}
	if len(sel) != 2 || sel[0].Name != "ctxflow" || sel[1].Name != "meterkey" {
		t.Errorf("selection = %v, want suite-ordered [ctxflow meterkey]", names(sel))
	}

	if _, err := selectAnalyzers(suite, "ctxflow,nosuch"); err == nil {
		t.Error("unknown analyzer name did not error")
	}
}

// names projects analyzer names for failure messages.
func names(as []*analysis.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}
