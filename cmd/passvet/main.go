// Command passvet runs the repository's static-analysis suite
// (internal/analysis) over the given packages — the multichecker for
// the store's own invariants, run by CI's docs job and, through
// internal/analysis's tree test, by plain `go test ./...`.
//
// The suite enforces: contexts flow in from the API (ctxflow), all time
// comes from sim.Clock (simclock), outer cloud mutations ride
// retry.Retrier.Do (retrywrap), sentinel errors match via errors.Is and
// wrap via %w (errsentinel), and billing meter keys are static
// (meterkey). See ARCHITECTURE.md § "Static analysis" for the
// rationale behind each invariant, and cmd/doclint for the companion
// documentation gate.
//
// Usage:
//
//	passvet [-list] [-only a,b] [packages]
//
// Packages default to ./..., resolved by the go command from the
// working directory. Exit status is 1 when findings are reported, 2 on
// load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"passcloud/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their one-line docs, then exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	suite, err := selectAnalyzers(suite, *only)
	if err != nil {
		fatalf("%v (try -list)", err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	mod, err := analysis.Load(cwd, flag.Args()...)
	if err != nil {
		fatalf("%v", err)
	}
	findings, err := analysis.Run(mod.Packages(), suite)
	if err != nil {
		fatalf("%v", err)
	}
	for _, f := range findings {
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers filters the suite down to the comma-separated names
// in only, preserving suite order; an empty only keeps everything, an
// unknown name is an error.
func selectAnalyzers(suite []*analysis.Analyzer, only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	keep := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		keep[strings.TrimSpace(name)] = true
	}
	var sel []*analysis.Analyzer
	for _, a := range suite {
		if keep[a.Name] {
			sel = append(sel, a)
			delete(keep, a.Name)
		}
	}
	for name := range keep {
		return nil, fmt.Errorf("unknown analyzer %q", name)
	}
	return sel, nil
}

// fatalf reports a driver error and exits with status 2.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "passvet: "+format+"\n", args...)
	os.Exit(2)
}
