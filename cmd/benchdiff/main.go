// Command benchdiff compares two passbench -json reports (the BENCH_<sha>
// trajectory artifacts CI persists) and fails when the new run regresses
// cloud-operation costs: write-path cloud ops per event (Table 2), the
// Table 3 query costs per architecture and query class, the scale-out
// load matrix, and the sharded cost matrix with its verification-cost
// columns (the ops and dollars a full tamper-evidence audit costs).
//
//	benchdiff old.json new.json            # fail on any ops regression
//	benchdiff -tol 0.02 old.json new.json  # allow 2% drift
//
// Reports with different scale/seed/tool are not comparable; benchdiff
// then exits 0 with a notice so a deliberate recalibration does not wedge
// CI (the new artifact becomes the next baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

// report mirrors the passbench/v1 fields benchdiff reads.
type report struct {
	Schema string  `json:"schema"`
	Scale  float64 `json:"scale"`
	Seed   int64   `json:"seed"`
	Tool   string  `json:"tool"`
	Table2 *struct {
		Rows []struct {
			Arch    string
			ProvOps int64
		}
	} `json:"table2"`
	Table3 *struct {
		Rows []struct {
			Query   string
			Arch    string
			Ops     int64
			Results int
		}
	} `json:"table3"`
	Dataset *struct {
		Objects    int64
		Transients int64
	} `json:"dataset"`
	Retry map[string]struct {
		Retries   int64 `json:"retries"`
		Exhausted int64 `json:"exhausted"`
	} `json:"retry"`
	Load *struct {
		Tenants int   `json:"tenants"`
		Writers int   `json:"writers"`
		Batches int   `json:"batches"`
		Seed    int64 `json:"seed"`
		Runs    []struct {
			Arch       string  `json:"arch"`
			Shards     int     `json:"shards"`
			Events     int64   `json:"events"`
			WriteOps   int64   `json:"write_ops"`
			Throughput float64 `json:"throughput_eps"`
		} `json:"runs"`
	} `json:"load"`
	Rebalance *struct {
		Writers     int     `json:"writers"`
		Batches     int     `json:"batches"`
		Seed        int64   `json:"seed"`
		Shards      int     `json:"shards"`
		HotFraction float64 `json:"hot_fraction"`
		Runs        []struct {
			Arch         string  `json:"arch"`
			Action       string  `json:"action"`
			PreHotShare  float64 `json:"pre_hot_share"`
			PostHotShare float64 `json:"post_hot_share"`
			MigOps       int64   `json:"mig_ops"`
			MigBytes     int64   `json:"mig_bytes"`
			MigUSD       float64 `json:"mig_usd"`
		} `json:"runs"`
	} `json:"rebalance"`
	Sharded *struct {
		Rows []struct {
			Arch    string `json:"arch"`
			Shards  int    `json:"shards"`
			ProvOps int64  `json:"prov_ops"`
			Queries []struct {
				Query   string  `json:"query"`
				Ops     int64   `json:"ops"`
				Results int     `json:"results"`
				USD     float64 `json:"usd"`
			} `json:"queries"`
			VerifyOps   int64   `json:"verify_ops"`
			VerifyUSD   float64 `json:"verify_usd"`
			VerifyClean bool    `json:"verify_clean"`
		} `json:"rows"`
	} `json:"sharded"`
	Replay *struct {
		Rows []struct {
			Arch        string  `json:"arch"`
			Shards      int     `json:"shards"`
			Subjects    int     `json:"subjects"`
			Sources     int     `json:"sources"`
			Compared    int     `json:"compared"`
			Divergences int     `json:"divergences"`
			ExtractOps  int64   `json:"extract_ops"`
			ReplayOps   int64   `json:"replay_ops"`
			ReplayUSD   float64 `json:"replay_usd"`
		} `json:"rows"`
	} `json:"replay"`
}

func load(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "passbench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, r.Schema)
	}
	return &r, nil
}

// events is the write-path event count the per-event ratio normalizes by:
// persistent objects plus transient versions.
func (r *report) events() int64 {
	if r.Dataset == nil {
		return 0
	}
	return r.Dataset.Objects + r.Dataset.Transients
}

func main() {
	tol := flag.Float64("tol", 0, "allowed fractional regression (0.02 = 2%)")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatal("usage: benchdiff [-tol f] old.json new.json")
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}

	if oldRep.Scale != newRep.Scale || oldRep.Seed != newRep.Seed || oldRep.Tool != newRep.Tool {
		fmt.Printf("benchdiff: baselines not comparable (scale/seed/tool %v/%d/%s vs %v/%d/%s); skipping\n",
			oldRep.Scale, oldRep.Seed, oldRep.Tool, newRep.Scale, newRep.Seed, newRep.Tool)
		return
	}

	failed := false
	check := func(metric string, oldV, newV int64) {
		if oldV <= 0 {
			// A metric appearing from zero is still a cost regression.
			if newV > 0 {
				fmt.Printf("%-40s old=%-8d new=%-8d  REGRESSION (new cost)\n", metric, oldV, newV)
				failed = true
			}
			return
		}
		delta := float64(newV-oldV) / float64(oldV)
		status := "ok"
		if delta > *tol {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-40s old=%-8d new=%-8d delta=%+.2f%%  %s\n", metric, oldV, newV, 100*delta, status)
	}

	// Write path: Table 2 provenance ops per architecture (same scale and
	// seed means the same event stream, so raw ops compare directly; the
	// per-event ratio is printed for the trajectory log).
	if oldRep.Table2 != nil && newRep.Table2 != nil {
		newOps := map[string]int64{}
		for _, row := range newRep.Table2.Rows {
			newOps[row.Arch] = row.ProvOps
		}
		for _, row := range oldRep.Table2.Rows {
			ops, ok := newOps[row.Arch]
			if !ok {
				fmt.Printf("%-40s missing in new report  REGRESSION\n", "table2/provops/"+row.Arch)
				failed = true
				continue
			}
			check("table2/provops/"+row.Arch, row.ProvOps, ops)
		}
		if ev, nev := oldRep.events(), newRep.events(); ev > 0 && nev > 0 {
			for _, row := range newRep.Table2.Rows {
				fmt.Printf("%-40s %.3f cloudops/event\n", "table2/opsperevent/"+row.Arch,
					float64(row.ProvOps)/float64(nev))
			}
		}
	}

	// Query path: Table 3 ops per query class and backend, plus a result-
	// count identity check (a faster query returning different answers is
	// not an improvement).
	if oldRep.Table3 != nil && newRep.Table3 != nil {
		type key struct{ q, arch string }
		newRows := map[key]struct {
			ops     int64
			results int
		}{}
		for _, row := range newRep.Table3.Rows {
			newRows[key{row.Query, row.Arch}] = struct {
				ops     int64
				results int
			}{row.Ops, row.Results}
		}
		for _, row := range oldRep.Table3.Rows {
			n, ok := newRows[key{row.Query, row.Arch}]
			if !ok {
				fmt.Printf("%-40s missing in new report  REGRESSION\n", "table3/"+row.Query+"/"+row.Arch)
				failed = true
				continue
			}
			check("table3/ops/"+row.Query+"/"+row.Arch, row.Ops, n.ops)
			if n.results != row.Results {
				fmt.Printf("%-40s results %d -> %d  REGRESSION (answers changed)\n",
					"table3/results/"+row.Query+"/"+row.Arch, row.Results, n.results)
				failed = true
			}
		}
	}

	// Retry overhead: the simulated region injects no faults during a
	// benchmark run, so retries or exhaustions appearing (or growing) mean
	// the write path started misclassifying errors or re-running work.
	// Old reports may predate the counters; gate only when both sides
	// carry them.
	if len(oldRep.Retry) > 0 && len(newRep.Retry) == 0 {
		// The counters existed and vanished wholesale — the gate would
		// silently disable itself exactly when the wiring broke.
		fmt.Printf("%-40s missing in new report  REGRESSION\n", "retry/(all)")
		failed = true
	}
	if len(oldRep.Retry) > 0 && len(newRep.Retry) > 0 {
		for arch, o := range oldRep.Retry {
			n, ok := newRep.Retry[arch]
			if !ok {
				// Counters vanishing for an arch disables the gate, which
				// is itself a regression — mirror the op-table checks.
				fmt.Printf("%-40s missing in new report  REGRESSION\n", "retry/"+arch)
				failed = true
				continue
			}
			check("retry/retries/"+arch, o.Retries, n.Retries)
			check("retry/exhausted/"+arch, o.Exhausted, n.Exhausted)
		}
	}

	// Scale-out load matrix: deterministic write metrics per (arch,
	// shards). Op counts must not grow (same tolerance as the tables);
	// modeled throughput must not drop — the inverse direction, so it
	// gets its own check. Event counts are an identity: same seed and
	// config means the same offered workload. The WAL architecture's op
	// totals can drift a few ops with queue interleaving; -tol absorbs it.
	if oldRep.Load != nil && newRep.Load == nil {
		fmt.Printf("%-40s missing in new report  REGRESSION\n", "load/(all)")
		failed = true
	}
	if oldRep.Load != nil && newRep.Load != nil {
		o, n := oldRep.Load, newRep.Load
		if o.Tenants != n.Tenants || o.Writers != n.Writers || o.Batches != n.Batches || o.Seed != n.Seed {
			fmt.Printf("benchdiff: load configs not comparable (%d/%d/%d/%d vs %d/%d/%d/%d); skipping load gate\n",
				o.Tenants, o.Writers, o.Batches, o.Seed, n.Tenants, n.Writers, n.Batches, n.Seed)
		} else {
			type key struct {
				arch   string
				shards int
			}
			newRuns := map[key]struct {
				events, ops int64
				eps         float64
			}{}
			for _, r := range n.Runs {
				newRuns[key{r.Arch, r.Shards}] = struct {
					events, ops int64
					eps         float64
				}{r.Events, r.WriteOps, r.Throughput}
			}
			for _, r := range o.Runs {
				name := fmt.Sprintf("load/%s/x%d", r.Arch, r.Shards)
				nr, ok := newRuns[key{r.Arch, r.Shards}]
				if !ok {
					fmt.Printf("%-40s missing in new report  REGRESSION\n", name)
					failed = true
					continue
				}
				if nr.events != r.Events {
					fmt.Printf("%-40s events %d -> %d  REGRESSION (offered workload changed)\n", name, r.Events, nr.events)
					failed = true
				}
				check(name+"/writeops", r.WriteOps, nr.ops)
				if r.Throughput > 0 {
					drop := (r.Throughput - nr.eps) / r.Throughput
					status := "ok"
					if drop > *tol {
						status = "REGRESSION"
						failed = true
					}
					fmt.Printf("%-40s old=%-8.0f new=%-8.0f delta=%+.2f%%  %s\n",
						name+"/eps", r.Throughput, nr.eps, -100*drop, status)
				}
			}
		}
	}

	// Rebalance (elastic resharding): the controller must keep splitting
	// hot shards, the post-split hot share must not creep back up, and
	// the migration's own cost (ops and dollars) must not regress. Same
	// vanished-section rule as every other gate.
	if oldRep.Rebalance != nil && newRep.Rebalance == nil {
		fmt.Printf("%-40s missing in new report  REGRESSION\n", "rebalance/(all)")
		failed = true
	}
	if oldRep.Rebalance != nil && newRep.Rebalance != nil {
		o, n := oldRep.Rebalance, newRep.Rebalance
		if o.Writers != n.Writers || o.Batches != n.Batches || o.Seed != n.Seed ||
			o.Shards != n.Shards || o.HotFraction != n.HotFraction {
			fmt.Println("benchdiff: rebalance configs not comparable; skipping rebalance gate")
		} else {
			type rrun struct {
				action string
				post   float64
				migOps int64
				migUSD float64
			}
			newRuns := map[string]rrun{}
			for _, r := range n.Runs {
				newRuns[r.Arch] = rrun{r.Action, r.PostHotShare, r.MigOps, r.MigUSD}
			}
			for _, r := range o.Runs {
				name := "rebalance/" + r.Arch
				nr, ok := newRuns[r.Arch]
				if !ok {
					fmt.Printf("%-40s missing in new report  REGRESSION\n", name)
					failed = true
					continue
				}
				if r.Action == "split" && nr.action != "split" {
					fmt.Printf("%-40s action %q -> %q  REGRESSION (hot shard no longer detected)\n",
						name, r.Action, nr.action)
					failed = true
				}
				if r.PostHotShare > 0 {
					delta := (nr.post - r.PostHotShare) / r.PostHotShare
					status := "ok"
					if delta > *tol {
						status = "REGRESSION"
						failed = true
					}
					fmt.Printf("%-40s old=%-8.3f new=%-8.3f delta=%+.2f%%  %s\n",
						name+"/posthotshare", r.PostHotShare, nr.post, 100*delta, status)
				}
				check(name+"/migops", r.MigOps, nr.migOps)
				if r.MigUSD > 0 {
					delta := (nr.migUSD - r.MigUSD) / r.MigUSD
					status := "ok"
					if delta > *tol {
						status = "REGRESSION"
						failed = true
					}
					fmt.Printf("%-40s old=$%-9.6f new=$%-9.6f delta=%+.2f%%  %s\n",
						name+"/migusd", r.MigUSD, nr.migUSD, 100*delta, status)
				}
			}
		}
	}

	// Sharded cost matrix and verification cost. Same vanished-section
	// rule as the other gates: an old report carrying the section that the
	// new one lacks means the tamper-evidence cost gate silently disabled
	// itself — a regression, not a skip. (The section newly appearing is
	// the seeding case and passes: every old row is still covered.)
	if oldRep.Sharded != nil && newRep.Sharded == nil {
		fmt.Printf("%-40s missing in new report  REGRESSION\n", "sharded/(all)")
		failed = true
	}
	if oldRep.Sharded != nil && newRep.Sharded != nil {
		type rkey struct {
			arch   string
			shards int
		}
		type qcost struct {
			ops     int64
			results int
			usd     float64
		}
		type rowView struct {
			provOps   int64
			verifyOps int64
			verifyUSD float64
			clean     bool
			queries   map[string]qcost
		}
		newRows := map[rkey]rowView{}
		for _, r := range newRep.Sharded.Rows {
			v := rowView{provOps: r.ProvOps, verifyOps: r.VerifyOps, verifyUSD: r.VerifyUSD,
				clean: r.VerifyClean, queries: map[string]qcost{}}
			for _, q := range r.Queries {
				v.queries[q.Query] = qcost{q.Ops, q.Results, q.USD}
			}
			newRows[rkey{r.Arch, r.Shards}] = v
		}
		for _, r := range oldRep.Sharded.Rows {
			name := fmt.Sprintf("sharded/%s/x%d", r.Arch, r.Shards)
			n, ok := newRows[rkey{r.Arch, r.Shards}]
			if !ok {
				fmt.Printf("%-40s missing in new report  REGRESSION\n", name)
				failed = true
				continue
			}
			check(name+"/provops", r.ProvOps, n.provOps)
			check(name+"/verifyops", r.VerifyOps, n.verifyOps)
			if !n.clean {
				fmt.Printf("%-40s namespace no longer verifies clean  REGRESSION\n", name)
				failed = true
			}
			if r.VerifyUSD > 0 {
				delta := (n.verifyUSD - r.VerifyUSD) / r.VerifyUSD
				status := "ok"
				if delta > *tol {
					status = "REGRESSION"
					failed = true
				}
				fmt.Printf("%-40s old=$%-7.4f new=$%-7.4f delta=%+.2f%%  %s\n",
					name+"/verifyusd", r.VerifyUSD, n.verifyUSD, 100*delta, status)
			}
			for _, q := range r.Queries {
				nq, ok := n.queries[q.Query]
				if !ok {
					fmt.Printf("%-40s missing in new report  REGRESSION\n", name+"/"+q.Query)
					failed = true
					continue
				}
				check(name+"/"+q.Query+"/ops", q.Ops, nq.ops)
				// The query bill gates like verifyusd: only once the old
				// report carries a nonzero price, so a seeding run (old
				// reports predating the field decode it as zero) passes.
				if q.USD > 0 {
					delta := (nq.usd - q.USD) / q.USD
					status := "ok"
					if delta > *tol {
						status = "REGRESSION"
						failed = true
					}
					fmt.Printf("%-40s old=$%-9.6f new=$%-9.6f delta=%+.2f%%  %s\n",
						name+"/"+q.Query+"/usd", q.USD, nq.usd, 100*delta, status)
				}
				if nq.results != q.Results {
					fmt.Printf("%-40s results %d -> %d  REGRESSION (answers changed)\n",
						name+"/"+q.Query, q.Results, nq.results)
					failed = true
				}
			}
		}
	}

	// Replay cost matrix: the divergence oracle's bill. Vanished-section
	// rule as above; beyond the op/USD gates, a row reporting divergences
	// is a correctness failure (the harness replays its own faithful
	// capture), and a change in coverage means the audit silently shrank
	// or grew.
	if oldRep.Replay != nil && newRep.Replay == nil {
		fmt.Printf("%-40s missing in new report  REGRESSION\n", "replay/(all)")
		failed = true
	}
	if oldRep.Replay != nil && newRep.Replay != nil {
		type rkey struct {
			arch   string
			shards int
		}
		type rowView struct {
			compared    int
			divergences int
			extractOps  int64
			replayOps   int64
			replayUSD   float64
		}
		newRows := map[rkey]rowView{}
		for _, r := range newRep.Replay.Rows {
			newRows[rkey{r.Arch, r.Shards}] = rowView{r.Compared, r.Divergences, r.ExtractOps, r.ReplayOps, r.ReplayUSD}
		}
		for _, r := range oldRep.Replay.Rows {
			name := fmt.Sprintf("replay/%s/x%d", r.Arch, r.Shards)
			n, ok := newRows[rkey{r.Arch, r.Shards}]
			if !ok {
				fmt.Printf("%-40s missing in new report  REGRESSION\n", name)
				failed = true
				continue
			}
			check(name+"/extractops", r.ExtractOps, n.extractOps)
			check(name+"/replayops", r.ReplayOps, n.replayOps)
			if n.divergences > 0 {
				fmt.Printf("%-40s %d divergences replaying a faithful capture  REGRESSION\n", name, n.divergences)
				failed = true
			}
			if n.compared != r.Compared {
				fmt.Printf("%-40s compared %d -> %d  REGRESSION (audit coverage changed)\n",
					name, r.Compared, n.compared)
				failed = true
			}
			if r.ReplayUSD > 0 {
				delta := (n.replayUSD - r.ReplayUSD) / r.ReplayUSD
				status := "ok"
				if delta > *tol {
					status = "REGRESSION"
					failed = true
				}
				fmt.Printf("%-40s old=$%-7.4f new=$%-7.4f delta=%+.2f%%  %s\n",
					name+"/replayusd", r.ReplayUSD, n.replayUSD, 100*delta, status)
			}
		}
	}

	if failed {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}
