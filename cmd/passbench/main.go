// Command passbench regenerates the paper's evaluation: Table 1 (properties
// comparison), Table 2 (storage cost comparison) and Table 3 (query cost
// comparison), from the calibrated combined workload (Linux compile + Blast
// + Provenance Challenge).
//
//	passbench -table all -scale 0.1
//	passbench -table 2 -estimate        # the paper's analytical formulas
//	passbench -table 3 -tool softmean
//	passbench -usd                      # January-2009 USD pricing
//
// Scale 1.0 reproduces the paper's dataset size (~1.27 GB, ~31k objects);
// the default 0.1 keeps memory modest while preserving every ratio.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"passcloud/internal/core/props"
	"passcloud/internal/cost"
)

func main() {
	table := flag.String("table", "all", "which table to produce: 1, 2, 3 or all")
	scale := flag.Float64("scale", 0.1, "workload scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 2009, "random seed")
	tool := flag.String("tool", "softmean", "Q.2/Q.3 target tool")
	estimate := flag.Bool("estimate", false, "also print Table 2 from the paper's analytical formulas, extrapolated to scale 1.0")
	usd := flag.Bool("usd", false, "also print the January-2009 USD bill per architecture")
	flag.Parse()

	ctx := context.Background()

	want := func(t string) bool { return *table == "all" || *table == t }

	if want("1") {
		if err := printTable1(ctx, *seed); err != nil {
			log.Fatalf("table 1: %v", err)
		}
	}

	if !want("2") && !want("3") && !*usd {
		return
	}

	h := &cost.Harness{Scale: *scale, Seed: *seed, Tool: *tool}
	fmt.Fprintf(os.Stderr, "passbench: loading combined workload at scale %.2f into all three architectures...\n", *scale)

	if want("2") {
		t2, err := h.Table2Measured(ctx)
		if err != nil {
			log.Fatalf("table 2: %v", err)
		}
		fmt.Println(t2)
		if *estimate {
			est, err := h.Table2Estimated(ctx)
			if err != nil {
				log.Fatalf("table 2 estimate: %v", err)
			}
			fmt.Println(est)
		}
		st := h.Stats()
		fmt.Printf("dataset: %d objects, %d items, %d records (%d over 1KB), %d transient versions\n\n",
			st.Objects, st.Items, st.Records, st.BigRecords, st.Transients)
	}

	if want("3") {
		t3, err := h.Table3Measured(ctx)
		if err != nil {
			log.Fatalf("table 3: %v", err)
		}
		fmt.Println(t3)
	}

	if *usd {
		if err := h.Load(ctx); err != nil {
			log.Fatalf("usd: %v", err)
		}
		fmt.Println("January-2009 USD bill per architecture (load phase):")
		for _, arch := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
			u, ok := h.Usage(arch)
			if !ok {
				continue
			}
			fmt.Println(cost.USDReport(arch, u))
		}
		fmt.Println()
	}
}

func printTable1(ctx context.Context, seed int64) error {
	var rows []cost.Table1Row
	for _, h := range props.StandardHarnesses(seed) {
		report, err := props.Check(ctx, h)
		if err != nil {
			return err
		}
		rows = append(rows, cost.Table1Row{
			Arch:           report.Name,
			Atomicity:      report.Measured.Atomicity,
			Consistency:    report.Measured.Consistency,
			CausalOrdering: report.Measured.CausalOrdering,
			EfficientQuery: report.Measured.EfficientQuery,
		})
		for _, v := range report.Violations {
			fmt.Fprintf(os.Stderr, "  %s: %s\n", report.Name, v)
		}
	}
	fmt.Println(cost.Table1Report(rows))
	return nil
}
