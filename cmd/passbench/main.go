// Command passbench regenerates the paper's evaluation: Table 1 (properties
// comparison), Table 2 (storage cost comparison) and Table 3 (query cost
// comparison), from the calibrated combined workload (Linux compile + Blast
// + Provenance Challenge).
//
//	passbench -table all -scale 0.1
//	passbench -table 2 -estimate        # the paper's analytical formulas
//	passbench -table 3 -tool softmean
//	passbench -table 3 -qcache          # adds Q.n+ repeat rows (snapshot cache)
//	passbench -usd                      # January-2009 USD pricing
//	passbench -json > BENCH_run.json    # machine-readable, for trajectory tracking
//	passbench -load                     # scale-out matrix: 3 archs x 1/4/16 shards
//	passbench -load -load-shards 1,8    # custom shard counts
//	passbench -load-rebalance           # elastic resharding: skewed load -> split -> replay
//	passbench -sharded                  # Tables 2/3 through the shard router + verification cost
//	passbench -replay                   # replay cost matrix: every lineage re-executed on a fresh namespace
//	passbench -cpuprofile cpu.out -memprofile mem.out   # pprof profiles of the run
//
// The -load mode runs the sustained-load harness (internal/workload): an
// open-loop multi-tenant generator against each architecture sharded
// across isolated namespaces, reporting deterministic write throughput
// under the WAN2009 latency model plus wall-clock latency histograms.
// With -json the numbers ride the report's "load" section, which
// benchdiff gates the same way it gates the cost tables.
//
// Scale 1.0 reproduces the paper's dataset size (~1.27 GB, ~31k objects);
// the default 0.1 keeps memory modest while preserving every ratio.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"passcloud/internal/cloud/billing"
	"passcloud/internal/core/props"
	"passcloud/internal/cost"
	"passcloud/internal/workload"
)

// report is the machine-readable form -json emits: everything the run
// produced, under a stable schema tag so trajectory tooling can diff
// BENCH_*.json files across commits.
type report struct {
	Schema string  `json:"schema"` // "passbench/v1"
	Scale  float64 `json:"scale"`
	Seed   int64   `json:"seed"`
	Tool   string  `json:"tool"`
	// QueryCache records whether Table 3 ran with the snapshot cache
	// enabled (its rows then include "+"-suffixed repeat runs).
	QueryCache bool               `json:"query_cache,omitempty"`
	Table1     []cost.Table1Row   `json:"table1,omitempty"`
	Table2     *cost.Table2       `json:"table2,omitempty"`
	Table3     *cost.Table3       `json:"table3,omitempty"`
	Dataset    *cost.DatasetStats `json:"dataset,omitempty"`
	// Retry reports each architecture's cumulative retry overhead for the
	// run (attempts, retries, recoveries, exhaustions, backoff wait). On a
	// healthy simulated region every counter except Attempts is zero;
	// benchdiff gates on regressions.
	Retry map[string]retryTotals `json:"retry,omitempty"`
	// USD is the January-2009 load-phase bill per architecture.
	USD map[string]float64 `json:"usd,omitempty"`
	// Load is the scale-out matrix (-load): sustained-load throughput per
	// architecture and shard count.
	Load *loadReportJSON `json:"load,omitempty"`
	// Rebalance is the elastic-resharding measurement (-load-rebalance):
	// hot-shard op shares before and after the migration controller's
	// split, plus the migration's own metered cost. benchdiff gates the
	// post-split share and the migration cost.
	Rebalance *rebalanceReportJSON `json:"rebalance,omitempty"`
	// Sharded is the sharded cost matrix (-sharded): the Tables 2/3
	// workloads through the shard router at each shard count, plus the
	// ops and dollars a full tamper-evidence audit of each namespace
	// costs. benchdiff gates its op counts and the verification cost.
	Sharded *cost.ShardedCosts `json:"sharded,omitempty"`
	// Replay is the replay cost matrix (-replay): every current lineage
	// re-executed against a fresh sandbox namespace, with the extraction
	// and re-execution ops and the January-2009 re-execution bill.
	// benchdiff gates the op counts, the bill, and that the replay of a
	// faithful capture stays divergence-free.
	Replay *cost.ReplayCosts `json:"replay,omitempty"`
}

// retryTotals is the stable JSON shape for one architecture's retry
// counters (wait rendered in milliseconds for the trajectory log).
type retryTotals struct {
	Attempts  int64   `json:"attempts"`
	Retries   int64   `json:"retries"`
	Recovered int64   `json:"recovered"`
	Exhausted int64   `json:"exhausted"`
	WaitMS    float64 `json:"wait_ms"`
}

func main() {
	table := flag.String("table", "all", "which table to produce: 1, 2, 3 or all")
	scale := flag.Float64("scale", 0.1, "workload scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 2009, "random seed")
	tool := flag.String("tool", "softmean", "Q.2/Q.3 target tool")
	estimate := flag.Bool("estimate", false, "also print Table 2 from the paper's analytical formulas, extrapolated to scale 1.0")
	usd := flag.Bool("usd", false, "also print the January-2009 USD bill per architecture")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON report on stdout instead of the text tables")
	qcacheOn := flag.Bool("qcache", false, "enable the query snapshot cache; Table 3 adds Q.n+ repeat rows, and base rows after the first query may be warm too (classes share the snapshot) — omit for the paper's cold costs")
	load := flag.Bool("load", false, "run the sustained-load scale-out matrix (all architectures at every -load-shards count)")
	rebalance := flag.Bool("load-rebalance", false, "run the elastic-resharding rebalance bench: skewed load, hot-shard detection + split, replayed load (all architectures at 4 shards)")
	loadShards := flag.String("load-shards", "1,4,16", "comma-separated shard counts for -load")
	sharded := flag.Bool("sharded", false, "run the sharded cost matrix: Tables 2/3 workloads through the shard router plus verification cost, at every -shard-counts count")
	shardCounts := flag.String("shard-counts", "1,4,16", "comma-separated shard counts for -sharded")
	replayBench := flag.Bool("replay", false, "run the replay cost matrix: every current lineage re-executed against a fresh sandbox namespace, at every -replay-shards count")
	replayShards := flag.String("replay-shards", "1,4", "comma-separated shard counts for -replay")
	loadTenants := flag.Int("load-tenants", 2, "tenants for -load (each gets isolated namespaces and its own billing keys)")
	loadWriters := flag.Int("load-writers", 2, "concurrent writers per tenant for -load")
	loadQueriers := flag.Int("load-queriers", 1, "concurrent queriers per tenant for -load")
	loadBatches := flag.Int("load-batches", 40, "file closes per writer for -load")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("cpuprofile: %v", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	ctx := context.Background()
	want := func(t string) bool { return *table == "all" || *table == t }
	rep := &report{Schema: "passbench/v1", Scale: *scale, Seed: *seed, Tool: *tool, QueryCache: *qcacheOn}

	if want("1") {
		rows, err := runTable1(ctx, *seed)
		if err != nil {
			log.Fatalf("table 1: %v", err)
		}
		rep.Table1 = rows
		if !*jsonOut {
			fmt.Println(cost.Table1Report(rows))
		}
	}

	if want("2") || want("3") || *usd || *sharded {
		h := &cost.Harness{Scale: *scale, Seed: *seed, Tool: *tool, CachedQueries: *qcacheOn}
		fmt.Fprintf(os.Stderr, "passbench: loading combined workload at scale %.2f into all three architectures...\n", *scale)

		if want("2") {
			t2, err := h.Table2Measured(ctx)
			if err != nil {
				log.Fatalf("table 2: %v", err)
			}
			rep.Table2 = t2
			st := h.Stats()
			rep.Dataset = &st
			if !*jsonOut {
				fmt.Println(t2)
				if *estimate {
					est, err := h.Table2Estimated(ctx)
					if err != nil {
						log.Fatalf("table 2 estimate: %v", err)
					}
					fmt.Println(est)
				}
				fmt.Printf("dataset: %d objects, %d items, %d records (%d over 1KB), %d transient versions\n\n",
					st.Objects, st.Items, st.Records, st.BigRecords, st.Transients)
			}
		}

		if want("3") {
			t3, err := h.Table3Measured(ctx)
			if err != nil {
				log.Fatalf("table 3: %v", err)
			}
			rep.Table3 = t3
			if !*jsonOut {
				fmt.Println(t3)
			}
		}

		// Retry overhead counters ride every report that loaded the
		// workload, so the trajectory gate sees retries appearing.
		rep.Retry = make(map[string]retryTotals)
		for _, arch := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
			snap, ok := h.RetrySnapshot(arch)
			if !ok {
				continue
			}
			rep.Retry[arch] = retryTotals{
				Attempts:  snap.Total.Attempts,
				Retries:   snap.Total.Retries,
				Recovered: snap.Total.Recovered,
				Exhausted: snap.Total.Exhausted,
				WaitMS:    float64(snap.Total.Wait) / float64(time.Millisecond),
			}
		}

		if *usd {
			if err := h.Load(ctx); err != nil {
				log.Fatalf("usd: %v", err)
			}
			rep.USD = make(map[string]float64)
			if !*jsonOut {
				fmt.Println("January-2009 USD bill per architecture (load phase):")
			}
			for _, arch := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
				u, ok := h.Usage(arch)
				if !ok {
					continue
				}
				rep.USD[arch] = billing.Jan2009.Price(u).Total()
				if !*jsonOut {
					fmt.Println(cost.USDReport(arch, u))
				}
			}
			if !*jsonOut {
				fmt.Println()
			}
		}

		if *sharded {
			counts, err := parseShardCounts(*shardCounts)
			if err != nil {
				log.Fatalf("sharded: %v", err)
			}
			fmt.Fprintf(os.Stderr, "passbench: sharded cost matrix at shard counts %v...\n", counts)
			sc, err := h.Sharded(ctx, counts)
			if err != nil {
				log.Fatalf("sharded: %v", err)
			}
			rep.Sharded = sc
			if !*jsonOut {
				fmt.Println(sc)
			}
		}
	}

	if *replayBench {
		counts, err := parseShardCounts(*replayShards)
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
		fmt.Fprintf(os.Stderr, "passbench: replay cost matrix at shard counts %v...\n", counts)
		h := &cost.Harness{Scale: *scale, Seed: *seed, Tool: *tool}
		rc, err := h.Replay(ctx, counts)
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
		rep.Replay = rc
		if !*jsonOut {
			fmt.Println(rc)
		}
	}

	if *load {
		counts, err := parseShardCounts(*loadShards)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
		cfg := workload.LoadConfig{
			Tenants: *loadTenants, Writers: *loadWriters, Queriers: *loadQueriers,
			Batches: *loadBatches, Seed: *seed,
		}
		lrep, err := runLoadMatrix(ctx, cfg, counts)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
		rep.Load = lrep
		if !*jsonOut {
			fmt.Println(lrep.text())
		}
	}

	if *rebalance {
		cfg := workload.LoadConfig{
			Writers: *loadWriters, Batches: *loadBatches, Seed: *seed,
		}
		rrep, err := runRebalanceMatrix(ctx, cfg)
		if err != nil {
			log.Fatalf("rebalance: %v", err)
		}
		rep.Rebalance = rrep
		if !*jsonOut {
			fmt.Println(rrep.text())
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	}
}

func runTable1(ctx context.Context, seed int64) ([]cost.Table1Row, error) {
	var rows []cost.Table1Row
	for _, h := range props.StandardHarnesses(seed) {
		report, err := props.Check(ctx, h)
		if err != nil {
			return nil, err
		}
		rows = append(rows, cost.Table1Row{
			Arch:           report.Name,
			Atomicity:      report.Measured.Atomicity,
			Consistency:    report.Measured.Consistency,
			CausalOrdering: report.Measured.CausalOrdering,
			EfficientQuery: report.Measured.EfficientQuery,
		})
		for _, v := range report.Violations {
			fmt.Fprintf(os.Stderr, "  %s: %s\n", report.Name, v)
		}
	}
	return rows, nil
}
