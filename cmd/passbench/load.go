package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/workload"
)

// This file is passbench's scale-out mode (-load): the sustained-load
// harness run for every architecture at every requested shard count, so
// the trajectory artifact carries throughput/scaling numbers benchdiff
// can gate exactly like it gates cloud-op counts.

// loadRunJSON is one (architecture, shard count) cell of the load matrix.
// Deterministic fields (events, ops, modeled throughput) are what
// benchdiff gates; wall-clock and latency percentiles are informative.
type loadRunJSON struct {
	Arch         string  `json:"arch"`
	Shards       int     `json:"shards"`
	Events       int64   `json:"events"`
	FlushBatches int64   `json:"flush_batches"`
	WriteOps     int64   `json:"write_ops"`
	PerShardOps  []int64 `json:"per_shard_ops"`
	BytesIn      int64   `json:"bytes_in"`
	ModeledMS    float64 `json:"modeled_write_ms"`
	Throughput   float64 `json:"throughput_eps"`
	// Speedup is ThroughputEPS relative to the same architecture's
	// 1-shard run of this report.
	Speedup float64 `json:"speedup,omitempty"`
	// Amplification is WriteOps relative to the 1-shard run (1.0 = the
	// per-shard op counts sum exactly to the unsharded baseline).
	Amplification float64 `json:"amplification,omitempty"`
	WallMS        float64 `json:"wall_ms"`
	FlushP50MS    float64 `json:"flush_p50_ms"`
	FlushP90MS    float64 `json:"flush_p90_ms"`
	FlushP99MS    float64 `json:"flush_p99_ms"`
	Queries       int64   `json:"queries"`
	QueryResults  int64   `json:"query_results"`
}

// loadReportJSON is the report's "load" section.
type loadReportJSON struct {
	Tenants     int           `json:"tenants"`
	Writers     int           `json:"writers"`
	Queriers    int           `json:"queriers"`
	Batches     int           `json:"batches"`
	Seed        int64         `json:"seed"`
	ShardCounts []int         `json:"shard_counts"`
	Runs        []loadRunJSON `json:"runs"`
}

// parseShardCounts parses the -load-shards flag ("1,4,16").
func parseShardCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// runLoadMatrix executes the sustained-load harness for every
// architecture × shard count and fills the report section.
func runLoadMatrix(ctx context.Context, cfg workload.LoadConfig, shardCounts []int) (*loadReportJSON, error) {
	rep := &loadReportJSON{
		Tenants: cfg.Tenants, Writers: cfg.Writers, Queriers: cfg.Queriers,
		Batches: cfg.Batches, Seed: cfg.Seed, ShardCounts: shardCounts,
	}
	base := make(map[string]*loadRunJSON)
	for _, arch := range workload.LoadArchs {
		for _, shards := range shardCounts {
			fmt.Fprintf(os.Stderr, "passbench: load %s x%d shards (%d tenants x %d writers x %d batches)...\n",
				arch, shards, cfg.Tenants, cfg.Writers, cfg.Batches)
			multi := cloud.NewMulti(cloud.Config{Seed: cfg.Seed})
			res, err := workload.RunLoad(ctx, cfg, func(tenant int) (workload.LoadTarget, error) {
				return workload.BuildLoadTarget(multi, arch, tenant, shards)
			})
			if err != nil {
				return nil, fmt.Errorf("load %s x%d: %w", arch, shards, err)
			}
			run := loadRunJSON{
				Arch: arch, Shards: shards,
				Events: res.Events, FlushBatches: res.FlushBatches,
				WriteOps: res.WriteOps, PerShardOps: res.PerShardOps, BytesIn: res.BytesIn,
				ModeledMS:  float64(res.ModeledWrite) / float64(time.Millisecond),
				Throughput: res.ThroughputEPS,
				WallMS:     float64(res.Wall) / float64(time.Millisecond),
				FlushP50MS: float64(res.FlushLatency.P50) / float64(time.Millisecond),
				FlushP90MS: float64(res.FlushLatency.P90) / float64(time.Millisecond),
				FlushP99MS: float64(res.FlushLatency.P99) / float64(time.Millisecond),
				Queries:    res.Queries, QueryResults: res.QueryResults,
			}
			if shards == 1 {
				base[arch] = &run
			}
			if b := base[arch]; b != nil && shards > 1 && b.Throughput > 0 && b.WriteOps > 0 {
				run.Speedup = run.Throughput / b.Throughput
				run.Amplification = float64(run.WriteOps) / float64(b.WriteOps)
			}
			rep.Runs = append(rep.Runs, run)
		}
	}
	return rep, nil
}

// text renders the matrix for terminal use — the same numbers the
// README's capacity-planning table is generated from.
func (rep *loadReportJSON) text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sustained load: %d tenants x %d writers x %d batches, %d queriers/tenant, seed %d (latency model WAN2009)\n",
		rep.Tenants, rep.Writers, rep.Batches, rep.Queriers, rep.Seed)
	fmt.Fprintf(&b, "%-12s %7s %8s %10s %12s %10s %9s %7s %10s %10s\n",
		"arch", "shards", "events", "write-ops", "modeled", "ev/s", "speedup", "amp", "p50-flush", "p99-flush")
	for _, r := range rep.Runs {
		speedup, amp := "-", "-"
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
			amp = fmt.Sprintf("%.3f", r.Amplification)
		}
		fmt.Fprintf(&b, "%-12s %7d %8d %10d %11.0fms %10.0f %9s %7s %9.2fms %9.2fms\n",
			r.Arch, r.Shards, r.Events, r.WriteOps, r.ModeledMS, r.Throughput, speedup, amp, r.FlushP50MS, r.FlushP99MS)
	}
	return b.String()
}
