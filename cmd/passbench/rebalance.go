package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"passcloud/internal/cloud"
	"passcloud/internal/core/shard"
	"passcloud/internal/core/shard/reshard"
	"passcloud/internal/prov"
	"passcloud/internal/workload"
)

// This file is passbench's rebalance mode (-load-rebalance): the measured
// case for elastic resharding. Per architecture, a skewed sustained load
// pins ~90% of traffic to one shard of four, the migration controller
// detects the hot shard from the billing meters and splits it, and a
// second load phase replays the same traffic pattern — names chosen
// against the frozen pre-migration ring — through the flipped ring. The
// report carries the pre/post hot-shard op shares, what the migration
// moved, and what it cost in cloud ops, bytes and January-2009 USD, all
// gated by benchdiff.

const (
	rebalanceShards      = 4
	rebalanceHotShard    = 0
	rebalanceHotFraction = 0.9
)

// rebalanceRunJSON is one architecture's rebalance measurement.
type rebalanceRunJSON struct {
	Arch     string `json:"arch"`
	Shards   int    `json:"shards"`
	HotShard int    `json:"hot_shard"`
	// Action is what the controller decided ("split"; "none" would mean
	// detection failed and pre/post shares are equal).
	Action string `json:"action"`
	// PreHotShare and PostHotShare are the hot shard's fraction of
	// write-phase cloud ops before and after the controller ran.
	PreHotShare  float64 `json:"pre_hot_share"`
	PostHotShare float64 `json:"post_hot_share"`
	// MovedSubjects/Objects/Bytes describe the migrated arc; MigOps,
	// MigBytes and MigUSD are the migration's own metered cost.
	MovedSubjects int     `json:"moved_subjects"`
	MovedObjects  int     `json:"moved_objects"`
	MovedBytes    int64   `json:"moved_bytes"`
	MigOps        int64   `json:"mig_ops"`
	MigBytes      int64   `json:"mig_bytes"`
	MigUSD        float64 `json:"mig_usd"`
	Epoch         int     `json:"epoch"`
}

// rebalanceReportJSON is the report's "rebalance" section.
type rebalanceReportJSON struct {
	Writers     int                `json:"writers"`
	Batches     int                `json:"batches"`
	Seed        int64              `json:"seed"`
	Shards      int                `json:"shards"`
	HotFraction float64            `json:"hot_fraction"`
	Runs        []rebalanceRunJSON `json:"runs"`
}

// frozenPlacer replays a captured ring assignment: phase-2 names are
// chosen as if the migration had not happened, so the measurement shows
// where the *same* traffic lands after the cutover.
type frozenPlacer struct {
	router *shard.Router
	assign []int
}

func (p frozenPlacer) ShardFor(o prov.ObjectID) int { return p.router.OwnerIn(p.assign, o) }
func (p frozenPlacer) NumShards() int               { return p.router.NumShards() }

// hotShare is the hot shard's fraction of the summed per-shard ops.
func hotShare(perShard []int64, hot int) float64 {
	var sum int64
	for _, ops := range perShard {
		sum += ops
	}
	if sum == 0 || hot >= len(perShard) {
		return 0
	}
	return float64(perShard[hot]) / float64(sum)
}

// runRebalanceMatrix measures skew -> detect -> split -> replay for every
// architecture at the fixed 4-shard layout.
func runRebalanceMatrix(ctx context.Context, cfg workload.LoadConfig) (*rebalanceReportJSON, error) {
	cfg.Tenants = 1
	cfg.HotShardFraction = rebalanceHotFraction
	cfg.HotShard = rebalanceHotShard
	rep := &rebalanceReportJSON{
		Writers: cfg.Writers, Batches: cfg.Batches, Seed: cfg.Seed,
		Shards: rebalanceShards, HotFraction: rebalanceHotFraction,
	}
	for _, arch := range workload.LoadArchs {
		fmt.Fprintf(os.Stderr, "passbench: rebalance %s x%d shards (hot shard %d at %.0f%%)...\n",
			arch, rebalanceShards, rebalanceHotShard, 100*rebalanceHotFraction)
		multi := cloud.NewMulti(cloud.Config{Seed: cfg.Seed})
		tg, err := workload.BuildLoadTarget(multi, arch, 0, rebalanceShards)
		if err != nil {
			return nil, fmt.Errorf("rebalance %s: %w", arch, err)
		}
		router, ok := tg.Store.(*shard.Router)
		if !ok {
			return nil, fmt.Errorf("rebalance %s: store is not a shard router", arch)
		}
		ctrl, err := reshard.New(reshard.Config{Router: router, Clouds: tg.Clouds, Drain: tg.Drain})
		if err != nil {
			return nil, fmt.Errorf("rebalance %s: %w", arch, err)
		}
		ctrl.SampleBaseline()
		frozen := frozenPlacer{router: router, assign: router.Assignment()}

		build := func(int) (workload.LoadTarget, error) { return tg, nil }
		pre, err := workload.RunLoad(ctx, cfg, build)
		if err != nil {
			return nil, fmt.Errorf("rebalance %s phase 1: %w", arch, err)
		}

		mig, err := ctrl.RunOnce(ctx)
		if err != nil {
			return nil, fmt.Errorf("rebalance %s migration: %w", arch, err)
		}

		// Phase 2: a fresh seed (fresh names) skewed against the FROZEN
		// pre-migration ring, written through the flipped ring.
		replay := cfg
		replay.Seed = cfg.Seed + 1
		replay.Placer = frozen
		post, err := workload.RunLoad(ctx, replay, build)
		if err != nil {
			return nil, fmt.Errorf("rebalance %s phase 2: %w", arch, err)
		}

		rep.Runs = append(rep.Runs, rebalanceRunJSON{
			Arch: arch, Shards: rebalanceShards, HotShard: rebalanceHotShard,
			Action:        mig.Action,
			PreHotShare:   hotShare(pre.PerShardOps, rebalanceHotShard),
			PostHotShare:  hotShare(post.PerShardOps, rebalanceHotShard),
			MovedSubjects: mig.Subjects, MovedObjects: mig.Objects, MovedBytes: mig.Bytes,
			MigOps: mig.MigTotalOps, MigBytes: mig.MigBytes, MigUSD: mig.USD,
			Epoch: mig.Epoch,
		})
	}
	return rep, nil
}

// text renders the rebalance matrix for terminal use — the README's
// "Elastic capacity" table is generated from these numbers.
func (rep *rebalanceReportJSON) text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rebalance: %d writers x %d batches at %d shards, %.0f%% of traffic on shard %d, seed %d\n",
		rep.Writers, rep.Batches, rep.Shards, 100*rep.HotFraction, rebalanceHotShard, rep.Seed)
	fmt.Fprintf(&b, "%-12s %7s %9s %10s %9s %9s %10s %10s %11s\n",
		"arch", "action", "pre-hot", "post-hot", "subjects", "objects", "mig-ops", "mig-bytes", "mig-usd")
	for _, r := range rep.Runs {
		fmt.Fprintf(&b, "%-12s %7s %8.1f%% %9.1f%% %9d %9d %10d %10d %11.6f\n",
			r.Arch, r.Action, 100*r.PreHotShare, 100*r.PostHotShare,
			r.MovedSubjects, r.MovedObjects, r.MigOps, r.MigBytes, r.MigUSD)
	}
	return b.String()
}
