// Command passctl drives a provenance-aware cloud client from a small
// command script (file or stdin), using only the public passcloud API. The
// cloud is simulated in-process, so one script is one session.
//
//	passctl -arch s3+sdb+sqs script.txt
//	echo 'ingest /d hello
//	      exec tool
//	      read tool /d
//	      write tool /out result
//	      close tool /out
//	      sync
//	      get /out
//	      outputs tool' | passctl
//
// Commands:
//
//	ingest PATH TEXT...          store a pre-existing data set
//	exec NAME [ARGV...]          start a process (handle = NAME)
//	spawn PARENT NAME [ARGV...]  start a child process
//	read NAME PATH               process reads a file
//	write NAME PATH TEXT...      process replaces a file
//	append NAME PATH TEXT...     process extends a file
//	close NAME PATH              persist the file + provenance
//	pipe FROM TO                 connect two processes
//	exit NAME                    end a process
//	sync                         drain everything to the cloud
//	settle                       let replication converge
//	get PATH                     fetch data + verified provenance
//	prov PATH VERSION            fetch one version's provenance
//	outputs TOOL                 Q.2: files written by TOOL
//	descendants TOOL             Q.3: everything derived from TOOL's outputs
//	ancestors PATH               full ancestry of PATH's current version
//	usage                        the cloud bill so far
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"passcloud"
)

func main() {
	archName := flag.String("arch", "s3+sdb+sqs", "architecture: s3 | s3+sdb | s3+sdb+sqs")
	seed := flag.Int64("seed", 2009, "random seed")
	delay := flag.Duration("delay", 0, "eventual-consistency delay")
	flag.Parse()

	arch, err := parseArch(*archName)
	if err != nil {
		log.Fatal(err)
	}
	client, err := passcloud.New(passcloud.Options{
		Architecture:     arch,
		Seed:             *seed,
		ConsistencyDelay: *delay,
	})
	if err != nil {
		log.Fatal(err)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	if err := run(client, in, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func parseArch(name string) (passcloud.Architecture, error) {
	switch strings.ToLower(name) {
	case "s3":
		return passcloud.S3Only, nil
	case "s3+sdb", "s3+simpledb":
		return passcloud.S3SimpleDB, nil
	case "s3+sdb+sqs", "s3+simpledb+sqs":
		return passcloud.S3SimpleDBSQS, nil
	default:
		return 0, fmt.Errorf("passctl: unknown architecture %q", name)
	}
}

// run interprets the script.
func run(client *passcloud.Client, in io.Reader, out io.Writer) error {
	ctx := context.Background()
	procs := make(map[string]*passcloud.Process)
	scanner := bufio.NewScanner(in)
	lineNo := 0

	proc := func(name string) (*passcloud.Process, error) {
		p, ok := procs[name]
		if !ok {
			return nil, fmt.Errorf("unknown process %q", name)
		}
		return p, nil
	}

	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]

		fail := func(err error) error {
			return fmt.Errorf("line %d (%s): %w", lineNo, cmd, err)
		}
		need := func(n int) error {
			if len(args) < n {
				return fmt.Errorf("line %d: %s needs %d arguments", lineNo, cmd, n)
			}
			return nil
		}

		switch cmd {
		case "ingest":
			if err := need(2); err != nil {
				return err
			}
			if err := client.Ingest(ctx, args[0], []byte(strings.Join(args[1:], " "))); err != nil {
				return fail(err)
			}
		case "exec":
			if err := need(1); err != nil {
				return err
			}
			procs[args[0]] = client.Exec(nil, passcloud.ProcessSpec{Name: args[0], Argv: args})
		case "spawn":
			if err := need(2); err != nil {
				return err
			}
			parent, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			procs[args[1]] = client.Exec(parent, passcloud.ProcessSpec{Name: args[1], Argv: args[1:]})
		case "read":
			if err := need(2); err != nil {
				return err
			}
			p, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			if err := p.Read(args[1]); err != nil {
				return fail(err)
			}
		case "write", "append":
			if err := need(3); err != nil {
				return err
			}
			p, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			data := []byte(strings.Join(args[2:], " "))
			if cmd == "write" {
				err = p.Write(args[1], data)
			} else {
				err = p.Append(args[1], data)
			}
			if err != nil {
				return fail(err)
			}
		case "close":
			if err := need(2); err != nil {
				return err
			}
			p, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			if err := p.Close(ctx, args[1]); err != nil {
				return fail(err)
			}
		case "pipe":
			if err := need(2); err != nil {
				return err
			}
			from, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			to, err := proc(args[1])
			if err != nil {
				return fail(err)
			}
			if err := from.PipeTo(to); err != nil {
				return fail(err)
			}
		case "exit":
			if err := need(1); err != nil {
				return err
			}
			p, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			p.Exit()
		case "sync":
			if err := client.Sync(ctx); err != nil {
				return fail(err)
			}
		case "settle":
			client.Settle()
		case "get":
			if err := need(1); err != nil {
				return err
			}
			obj, err := client.Get(ctx, args[0])
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(out, "%s = %q\n", obj.Ref, obj.Data)
			for _, r := range obj.Records {
				fmt.Fprintf(out, "  %s = %s\n", r.Attr, truncate(r.Value, 60))
			}
		case "prov":
			if err := need(2); err != nil {
				return err
			}
			version, err := strconv.Atoi(args[1])
			if err != nil {
				return fail(err)
			}
			records, err := client.Provenance(ctx, passcloud.Ref{Object: args[0], Version: version})
			if err != nil {
				return fail(err)
			}
			for _, r := range records {
				fmt.Fprintf(out, "  %s = %s\n", r.Attr, truncate(r.Value, 60))
			}
		case "outputs":
			if err := need(1); err != nil {
				return err
			}
			refs, err := client.OutputsOf(ctx, args[0])
			if err != nil {
				return fail(err)
			}
			printRefs(out, refs)
		case "descendants":
			if err := need(1); err != nil {
				return err
			}
			refs, err := client.DescendantsOfOutputs(ctx, args[0])
			if err != nil {
				return fail(err)
			}
			printRefs(out, refs)
		case "ancestors":
			if err := need(1); err != nil {
				return err
			}
			obj, err := client.Get(ctx, args[0])
			if err != nil {
				return fail(err)
			}
			refs, err := client.Ancestors(ctx, obj.Ref)
			if err != nil {
				return fail(err)
			}
			printRefs(out, refs)
		case "usage":
			u := client.Usage()
			fmt.Fprintf(out, "ops: s3=%d sdb=%d sqs=%d | stored: %d bytes | in/out: %d/%d | $%.4f\n",
				u.S3Ops, u.SimpleDBOps, u.SQSOps,
				u.S3Stored+u.SimpleDBStored+u.SQSStored,
				u.TransferredIn, u.TransferredOut, u.USD)
		default:
			return fmt.Errorf("line %d: unknown command %q", lineNo, cmd)
		}
	}
	return scanner.Err()
}

func printRefs(out io.Writer, refs []passcloud.Ref) {
	if len(refs) == 0 {
		fmt.Fprintln(out, "  (none)")
		return
	}
	for _, r := range refs {
		fmt.Fprintf(out, "  %s\n", r)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
