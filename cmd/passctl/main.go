// Command passctl drives a provenance-aware cloud client from a small
// command script (file or stdin), using only the public passcloud API. The
// cloud is simulated in-process, so one script is one session.
//
//	passctl -arch s3+sdb+sqs script.txt
//	echo 'ingest /d hello
//	      exec tool
//	      read tool /d
//	      write tool /out result
//	      close tool /out
//	      sync
//	      get /out
//	      outputs tool' | passctl
//
// Commands:
//
//	ingest PATH TEXT...          store a pre-existing data set
//	exec NAME [ARGV...]          start a process (handle = NAME)
//	spawn PARENT NAME [ARGV...]  start a child process
//	read NAME PATH               process reads a file
//	write NAME PATH TEXT...      process replaces a file
//	append NAME PATH TEXT...     process extends a file
//	derive NAME PATH             write NAME's registered tool output (replayable)
//	close NAME PATH              persist the file + provenance
//	pipe FROM TO                 connect two processes
//	exit NAME                    end a process
//	sync                         drain everything to the cloud
//	settle                       let replication converge
//	get PATH                     fetch data + verified provenance
//	prov PATH VERSION            fetch one version's provenance
//	outputs TOOL                 Q.2: files written by TOOL
//	descendants TOOL             Q.3: everything derived from TOOL's outputs
//	ancestors PATH               full ancestry of PATH's current version
//	query [flags]                composable Query API v2 (see below)
//	verify                       tamper-evidence audit of the whole namespace
//	verify PATH                  verify one object's hash-chained lineage
//	replay                       re-execute every current lineage and diff (divergence oracle)
//	replay PATH                  replay one object's lineage subgraph
//	reshard OP [ARGS]            elastic resharding (sharded sessions; see below)
//	usage                        the cloud bill so far
//
// The -shards N flag routes the session across N sharded namespaces and
// -tenant KEY bills it under a tenant key; `verify` then audits every
// shard and composes the per-shard Merkle roots into the namespace root.
//
// The reshard command drives the live migration controller, as a script
// command and as a subcommand (`passctl -shards 4 reshard -script
// setup.txt split 0 1`):
//
//	reshard status               journal phase, ring epoch, op shares
//	reshard baseline             sample the per-shard meters for detection
//	reshard split SRC [DST]      shed half of SRC's ring points (verified cutover)
//	reshard merge SRC [DST]      drain all of SRC's ring points
//	reshard rebalance            one reconciliation pass (auto split if hot)
//	reshard recover              complete an interrupted migration
//
// The query command drives the composable v2 API, both as a script command
// and as a subcommand (`passctl query -script setup.txt -tool blast`; the
// setup script populates the in-process cloud first):
//
//	query -tool blast -type file          Q.2 as a descriptor
//	query -attr argv=-x -prefix /out/     attribute + ref-prefix filters
//	query -tool blast -descendants        Q.3 as a descriptor
//	query -ancestors -ref /out/a:0        ancestry walk
//	query -limit 2                        paginate (prints a resume cursor)
//	query -limit 2 -cursor last           resume the previous query's cursor
//	query -explain -tool blast            predicted cost plan, no execution
//	query -json -tool blast               machine-readable entries + cursor
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"passcloud"
)

func main() {
	archName := flag.String("arch", "s3+sdb+sqs", "architecture: s3 | s3+sdb | s3+sdb+sqs")
	seed := flag.Int64("seed", 2009, "random seed")
	delay := flag.Duration("delay", 0, "eventual-consistency delay")
	shards := flag.Int("shards", 0, "shard the store across this many namespaces (0 = unsharded)")
	tenant := flag.String("tenant", "", "bill this session under a tenant key")
	flag.Parse()

	arch, err := parseArch(*archName)
	if err != nil {
		log.Fatal(err)
	}
	client, err := passcloud.New(passcloud.Options{
		Architecture:     arch,
		Seed:             *seed,
		ConsistencyDelay: *delay,
		Shards:           *shards,
		Tenant:           *tenant,
	})
	if err != nil {
		log.Fatal(err)
	}

	args := flag.Args()
	if len(args) > 0 && args[0] == "query" {
		// Subcommand form: populate from -script (or stdin), then run the
		// one query end to end.
		if err := runQuerySubcommand(client, args[1:], os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(args) > 0 && args[0] == "reshard" {
		if err := runReshardSubcommand(client, args[1:], os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	if err := run(client, in, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runReshardSubcommand mirrors the query subcommand: populate from
// -script (or stdin), then run one reshard operation.
func runReshardSubcommand(client *passcloud.Client, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reshard", flag.ContinueOnError)
	script := fs.String("script", "", "setup script to run first (default: stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := io.Reader(os.Stdin)
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	if err := run(client, in, io.Discard); err != nil {
		return err
	}
	return execReshard(client, fs.Args(), out)
}

// execReshard runs one reshard operation: status, baseline, split,
// merge, rebalance or recover.
func execReshard(client *passcloud.Client, args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("reshard: want status | baseline | split SRC [DST] | merge SRC [DST] | rebalance | recover")
	}
	rs, err := client.Resharder()
	if err != nil {
		return err
	}
	pair := func() (int, int, error) {
		if len(args) < 2 {
			return 0, 0, fmt.Errorf("reshard %s needs a source shard", args[0])
		}
		src, err := strconv.Atoi(args[1])
		if err != nil {
			return 0, 0, fmt.Errorf("reshard: bad source shard %q", args[1])
		}
		dst := -1 // the controller picks the coldest shard
		if len(args) > 2 {
			if dst, err = strconv.Atoi(args[2]); err != nil {
				return 0, 0, fmt.Errorf("reshard: bad destination shard %q", args[2])
			}
		}
		return src, dst, nil
	}
	ctx := context.Background()
	switch args[0] {
	case "status":
		st := rs.Status()
		fmt.Fprintf(out, "phase %s, ring epoch %d, migrating %v\n", st.Phase, st.Epoch, st.Migrating)
		for i, s := range st.Shares {
			fmt.Fprintf(out, "  shard %d: %4.1f%% of ops since baseline\n", i, 100*s)
		}
		if st.Shares == nil {
			fmt.Fprintln(out, "  (no baseline sampled)")
		}
	case "baseline":
		rs.SampleBaseline()
		fmt.Fprintln(out, "baseline sampled")
	case "split":
		src, dst, err := pair()
		if err != nil {
			return err
		}
		rep, err := rs.Split(ctx, src, dst)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rep)
	case "merge":
		src, dst, err := pair()
		if err != nil {
			return err
		}
		rep, err := rs.Merge(ctx, src, dst)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rep)
	case "rebalance":
		rep, err := rs.Rebalance(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rep)
	case "recover":
		phase, err := rs.Recover(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "recovered from phase %s\n", phase)
	default:
		return fmt.Errorf("reshard: unknown operation %q", args[0])
	}
	return nil
}

// runQuerySubcommand parses query flags (plus -script for the setup
// commands) and executes one query against the populated client.
func runQuerySubcommand(client *passcloud.Client, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	script := fs.String("script", "", "setup script to run first (default: stdin)")
	opts, err := parseQueryFlags(fs, args)
	if err != nil {
		return err
	}
	in := io.Reader(os.Stdin)
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	state := &session{}
	if err := runSession(client, in, out, state); err != nil {
		return err
	}
	return execQuery(client, opts, state, out)
}

func parseArch(name string) (passcloud.Architecture, error) {
	switch strings.ToLower(name) {
	case "s3":
		return passcloud.S3Only, nil
	case "s3+sdb", "s3+simpledb":
		return passcloud.S3SimpleDB, nil
	case "s3+sdb+sqs", "s3+simpledb+sqs":
		return passcloud.S3SimpleDBSQS, nil
	default:
		return 0, fmt.Errorf("passctl: unknown architecture %q", name)
	}
}

// session is the interpreter state that survives across script lines: the
// process handles and the last query's resume cursor (for `-cursor last`).
type session struct {
	procs      map[string]*passcloud.Process
	lastCursor string
}

// run interprets the script with a fresh session.
func run(client *passcloud.Client, in io.Reader, out io.Writer) error {
	return runSession(client, in, out, &session{})
}

// runSession interprets the script.
func runSession(client *passcloud.Client, in io.Reader, out io.Writer, state *session) error {
	ctx := context.Background()
	if state.procs == nil {
		state.procs = make(map[string]*passcloud.Process)
	}
	procs := state.procs
	scanner := bufio.NewScanner(in)
	lineNo := 0

	proc := func(name string) (*passcloud.Process, error) {
		p, ok := procs[name]
		if !ok {
			return nil, fmt.Errorf("unknown process %q", name)
		}
		return p, nil
	}

	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]

		fail := func(err error) error {
			return fmt.Errorf("line %d (%s): %w", lineNo, cmd, err)
		}
		need := func(n int) error {
			if len(args) < n {
				return fmt.Errorf("line %d: %s needs %d arguments", lineNo, cmd, n)
			}
			return nil
		}

		switch cmd {
		case "ingest":
			if err := need(2); err != nil {
				return err
			}
			if err := client.Ingest(ctx, args[0], []byte(strings.Join(args[1:], " "))); err != nil {
				return fail(err)
			}
		case "exec":
			if err := need(1); err != nil {
				return err
			}
			procs[args[0]] = client.Exec(nil, passcloud.ProcessSpec{Name: args[0], Argv: args})
		case "spawn":
			if err := need(2); err != nil {
				return err
			}
			parent, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			procs[args[1]] = client.Exec(parent, passcloud.ProcessSpec{Name: args[1], Argv: args[1:]})
		case "read":
			if err := need(2); err != nil {
				return err
			}
			p, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			if err := p.Read(args[1]); err != nil {
				return fail(err)
			}
		case "write", "append":
			if err := need(3); err != nil {
				return err
			}
			p, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			data := []byte(strings.Join(args[2:], " "))
			if cmd == "write" {
				err = p.Write(args[1], data)
			} else {
				err = p.Append(args[1], data)
			}
			if err != nil {
				return fail(err)
			}
		case "derive":
			if err := need(2); err != nil {
				return err
			}
			p, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			if err := p.WriteDerived(args[1]); err != nil {
				return fail(err)
			}
		case "close":
			if err := need(2); err != nil {
				return err
			}
			p, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			if err := p.Close(ctx, args[1]); err != nil {
				return fail(err)
			}
		case "pipe":
			if err := need(2); err != nil {
				return err
			}
			from, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			to, err := proc(args[1])
			if err != nil {
				return fail(err)
			}
			if err := from.PipeTo(to); err != nil {
				return fail(err)
			}
		case "exit":
			if err := need(1); err != nil {
				return err
			}
			p, err := proc(args[0])
			if err != nil {
				return fail(err)
			}
			p.Exit()
		case "sync":
			if err := client.Sync(ctx); err != nil {
				return fail(err)
			}
		case "settle":
			client.Settle()
		case "get":
			if err := need(1); err != nil {
				return err
			}
			obj, err := client.Get(ctx, args[0])
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(out, "%s = %q\n", obj.Ref, obj.Data)
			for _, r := range obj.Records {
				fmt.Fprintf(out, "  %s = %s\n", r.Attr, truncate(r.Value, 60))
			}
		case "prov":
			if err := need(2); err != nil {
				return err
			}
			version, err := strconv.Atoi(args[1])
			if err != nil {
				return fail(err)
			}
			records, err := client.Provenance(ctx, passcloud.Ref{Object: args[0], Version: version})
			if err != nil {
				return fail(err)
			}
			for _, r := range records {
				fmt.Fprintf(out, "  %s = %s\n", r.Attr, truncate(r.Value, 60))
			}
		case "outputs":
			if err := need(1); err != nil {
				return err
			}
			refs, err := client.OutputsOf(ctx, args[0])
			if err != nil {
				return fail(err)
			}
			printRefs(out, refs)
		case "descendants":
			if err := need(1); err != nil {
				return err
			}
			refs, err := client.DescendantsOfOutputs(ctx, args[0])
			if err != nil {
				return fail(err)
			}
			printRefs(out, refs)
		case "ancestors":
			if err := need(1); err != nil {
				return err
			}
			obj, err := client.Get(ctx, args[0])
			if err != nil {
				return fail(err)
			}
			refs, err := client.Ancestors(ctx, obj.Ref)
			if err != nil {
				return fail(err)
			}
			printRefs(out, refs)
		case "query":
			fs := flag.NewFlagSet("query", flag.ContinueOnError)
			opts, err := parseQueryFlags(fs, args)
			if err != nil {
				return fail(err)
			}
			if err := execQuery(client, opts, state, out); err != nil {
				return fail(err)
			}
		case "reshard":
			if err := execReshard(client, args, out); err != nil {
				return fail(err)
			}
		case "verify":
			if len(args) == 0 {
				rep, err := client.VerifyAll(ctx)
				if err != nil {
					return fail(err)
				}
				printVerifyReport(out, rep)
				break
			}
			rep, err := client.VerifyLineage(ctx, args[0])
			if err != nil {
				return fail(err)
			}
			status := "intact"
			if !rep.Clean() {
				status = "DIVERGED"
			}
			fmt.Fprintf(out, "%s: %s (%d versions, shard %d)\n", rep.Object, status, rep.Versions, rep.Shard)
			for _, d := range rep.Divergences {
				fmt.Fprintf(out, "  %s\n", d)
			}
		case "replay":
			var rep *passcloud.ReplayReport
			var err error
			if len(args) == 0 {
				rep, err = client.ReplayAll(ctx)
			} else {
				rep, err = client.Replay(ctx, args[0])
			}
			if err != nil {
				return fail(err)
			}
			printReplayReport(out, rep)
		case "usage":
			u := client.Usage()
			fmt.Fprintf(out, "ops: s3=%d sdb=%d sqs=%d | stored: %d bytes | in/out: %d/%d | $%.4f\n",
				u.S3Ops, u.SimpleDBOps, u.SQSOps,
				u.S3Stored+u.SimpleDBStored+u.SQSStored,
				u.TransferredIn, u.TransferredOut, u.USD)
		default:
			return fmt.Errorf("line %d: unknown command %q", lineNo, cmd)
		}
	}
	return scanner.Err()
}

// printReplayReport renders one replay run: coverage counters, the
// sandbox re-execution bill, and every divergence.
func printReplayReport(out io.Writer, rep *passcloud.ReplayReport) {
	status := "clean"
	if !rep.Clean() {
		status = "DIVERGED"
	}
	fmt.Fprintf(out, "replay: %s — %d derived, %d sources, %d processes, %d compared ($%.4f sandbox)\n",
		status, rep.Subjects, rep.Sources, rep.Processes, rep.Compared, rep.Usage.USD)
	for _, d := range rep.Divergences {
		fmt.Fprintf(out, "  %s\n", d)
	}
}

// printVerifyReport renders a whole-namespace verification: one line per
// shard, the composed namespace root, and every divergence.
func printVerifyReport(out io.Writer, rep *passcloud.VerifyReport) {
	for _, s := range rep.Shards {
		status := "clean"
		if !s.Clean() {
			status = "DIVERGED"
		}
		root := "root matches checkpoint"
		switch {
		case s.MultiWriter:
			root = "multi-writer (root check per chain)"
		case s.CheckpointRoot == "":
			root = "no checkpoint"
		case s.Root != s.CheckpointRoot:
			root = "ROOT MISMATCH"
		}
		fmt.Fprintf(out, "shard %d: %s — %d subjects, %d records, %s\n",
			s.Shard, status, s.Subjects, s.Records, root)
	}
	fmt.Fprintf(out, "namespace root %s\n", truncate(rep.NamespaceRoot, 16))
	if rep.Clean() {
		fmt.Fprintln(out, "verification: OK")
		return
	}
	for _, d := range rep.Divergences() {
		fmt.Fprintf(out, "  %s\n", d)
	}
	fmt.Fprintln(out, "verification: FAILED")
}

func printRefs(out io.Writer, refs []passcloud.Ref) {
	if len(refs) == 0 {
		fmt.Fprintln(out, "  (none)")
		return
	}
	for _, r := range refs {
		fmt.Fprintf(out, "  %s\n", r)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// queryOpts is one parsed query invocation.
type queryOpts struct {
	spec    passcloud.QuerySpec
	explain bool
	jsonOut bool
	full    bool
}

// attrFlags collects repeatable -attr k=v pairs.
type attrFlags map[string]string

func (a attrFlags) String() string { return fmt.Sprintf("%v", map[string]string(a)) }

func (a attrFlags) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok || k == "" {
		return fmt.Errorf("-attr wants k=v, got %q", v)
	}
	a[k] = val
	return nil
}

// parseQueryFlags registers the query flag set on fs and parses args.
func parseQueryFlags(fs *flag.FlagSet, args []string) (queryOpts, error) {
	var o queryOpts
	attrs := attrFlags{}
	fs.StringVar(&o.spec.Tool, "tool", "", "filter: outputs of this tool (Q.2 when combined with -type file)")
	fs.StringVar(&o.spec.Type, "type", "", "filter: object type (file | process | pipe)")
	fs.Var(attrs, "attr", "filter: attribute k=v (repeatable)")
	fs.StringVar(&o.spec.RefPrefix, "prefix", "", "filter: object:version prefix")
	ref := fs.String("ref", "", "filter: exact object:version seed (repeatable via commas)")
	descendants := fs.Bool("descendants", false, "traverse: everything derived from the matches (Q.3 shape)")
	ancestors := fs.Bool("ancestors", false, "traverse: full ancestry of the matches")
	includeSeeds := fs.Bool("include-seeds", false, "traversal results may include matched seeds")
	fs.IntVar(&o.spec.Depth, "depth", 0, "traversal depth limit (0 = unlimited)")
	fs.IntVar(&o.spec.Limit, "limit", 0, "page size (0 = everything)")
	fs.StringVar(&o.spec.Cursor, "cursor", "", "resume cursor; \"last\" reuses the previous query's")
	fs.BoolVar(&o.full, "full", false, "include provenance records in the results")
	fs.BoolVar(&o.explain, "explain", false, "print the predicted cost plan instead of running")
	fs.BoolVar(&o.jsonOut, "json", false, "machine-readable output")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if len(fs.Args()) > 0 {
		return o, fmt.Errorf("query: unexpected arguments %v", fs.Args())
	}
	if *descendants && *ancestors {
		return o, fmt.Errorf("query: -descendants and -ancestors are mutually exclusive")
	}
	if *descendants {
		o.spec.Direction = passcloud.TraverseDescendants
	}
	if *ancestors {
		o.spec.Direction = passcloud.TraverseAncestors
	}
	o.spec.IncludeSeeds = *includeSeeds
	if len(attrs) > 0 {
		o.spec.Attrs = attrs
	}
	if *ref != "" {
		for _, rs := range strings.Split(*ref, ",") {
			// The version is the digits after the LAST colon, so object
			// names may themselves contain colons.
			i := strings.LastIndexByte(rs, ':')
			if i <= 0 {
				return o, fmt.Errorf("query: malformed -ref %q (want object:version)", rs)
			}
			v, err := strconv.Atoi(rs[i+1:])
			if err != nil {
				return o, fmt.Errorf("query: malformed -ref version in %q", rs)
			}
			o.spec.Refs = append(o.spec.Refs, passcloud.Ref{Object: rs[:i], Version: v})
		}
	}
	o.spec.RefsOnly = !o.full
	return o, nil
}

// queryJSON is the -json output shape.
type queryJSON struct {
	Entries []jsonEntry          `json:"entries,omitempty"`
	Cursor  string               `json:"cursor,omitempty"`
	Plan    *passcloud.QueryPlan `json:"plan,omitempty"`
}

type jsonEntry struct {
	Ref     string              `json:"ref"`
	Records map[string][]string `json:"records,omitempty"`
}

// execQuery runs (or explains) one parsed query against the client.
func execQuery(client *passcloud.Client, o queryOpts, state *session, out io.Writer) error {
	if o.spec.Cursor == "last" {
		if state.lastCursor == "" {
			// The previous page sequence is complete (or none started):
			// resuming past the end yields nothing rather than wrapping
			// around to a fresh first page.
			fmt.Fprintln(out, "  (none)")
			return nil
		}
		o.spec.Cursor = state.lastCursor
	}
	if o.explain {
		plan, err := client.Explain(o.spec)
		if err != nil {
			return err
		}
		if o.jsonOut {
			return json.NewEncoder(out).Encode(queryJSON{Plan: &plan})
		}
		fmt.Fprintln(out, plan)
		return nil
	}
	res, err := client.Search(context.Background(), o.spec)
	if err != nil {
		return err
	}
	state.lastCursor = res.Cursor
	if o.jsonOut {
		rep := queryJSON{Cursor: res.Cursor}
		for _, e := range res.Entries {
			je := jsonEntry{Ref: e.Ref.String()}
			if len(e.Records) > 0 {
				je.Records = make(map[string][]string)
				for _, r := range e.Records {
					je.Records[r.Attr] = append(je.Records[r.Attr], r.Value)
				}
			}
			rep.Entries = append(rep.Entries, je)
		}
		return json.NewEncoder(out).Encode(rep)
	}
	if len(res.Entries) == 0 {
		fmt.Fprintln(out, "  (none)")
	}
	for _, e := range res.Entries {
		fmt.Fprintf(out, "  %s\n", e.Ref)
		for _, r := range e.Records {
			fmt.Fprintf(out, "    %s = %s\n", r.Attr, truncate(r.Value, 60))
		}
	}
	if res.Cursor != "" {
		fmt.Fprintf(out, "  cursor %s\n", res.Cursor)
	}
	return nil
}
