package main

import (
	"strings"
	"testing"

	"passcloud"
)

func newClient(t *testing.T) *passcloud.Client {
	t.Helper()
	c, err := passcloud.New(passcloud.Options{Architecture: passcloud.S3SimpleDBSQS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScriptEndToEnd(t *testing.T) {
	script := `
# a tiny pipeline
ingest /data/in.csv raw,data,here
exec analyze
read analyze /data/in.csv
write analyze /out/result.dat the result
close analyze /out/result.dat
exit analyze
sync
settle
get /out/result.dat
outputs analyze
descendants analyze
ancestors /out/result.dat
usage
`
	var out strings.Builder
	if err := run(newClient(t), strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		`/out/result.dat:0 = "the result"`,
		"input = proc/1/analyze:0",
		"/out/result.dat:0\n", // outputs listing
		"/data/in.csv:0",      // ancestors listing
		"ops:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestScriptPipeAndSpawn(t *testing.T) {
	script := `
exec gen
spawn gen child
pipe gen child
append child /log one
append child /log  two
close child /log
sync
get /log
`
	var out strings.Builder
	if err := run(newClient(t), strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"onetwo"`) {
		t.Fatalf("append content wrong:\n%s", out.String())
	}
}

func TestScriptErrors(t *testing.T) {
	cases := []struct {
		name, script, wantErr string
	}{
		{"unknown command", "frobnicate", "unknown command"},
		{"unknown process", "read ghost /f", "unknown process"},
		{"missing args", "ingest /only-path", "needs 2 arguments"},
		{"get missing", "get /nope", "not found"},
		{"bad version", "prov /f abc", "invalid syntax"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(newClient(t), strings.NewReader(c.script), &strings.Builder{})
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestParseArch(t *testing.T) {
	for name, want := range map[string]passcloud.Architecture{
		"s3":         passcloud.S3Only,
		"s3+sdb":     passcloud.S3SimpleDB,
		"s3+sdb+sqs": passcloud.S3SimpleDBSQS,
	} {
		got, err := parseArch(name)
		if err != nil || got != want {
			t.Fatalf("parseArch(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseArch("dynamo"); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	script := "\n# comment only\n\n   \n"
	if err := run(newClient(t), strings.NewReader(script), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
