package main

import (
	"strings"
	"testing"

	"passcloud"
)

func newClient(t *testing.T) *passcloud.Client {
	t.Helper()
	c, err := passcloud.New(passcloud.Options{Architecture: passcloud.S3SimpleDBSQS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScriptEndToEnd(t *testing.T) {
	script := `
# a tiny pipeline
ingest /data/in.csv raw,data,here
exec analyze
read analyze /data/in.csv
write analyze /out/result.dat the result
close analyze /out/result.dat
exit analyze
sync
settle
get /out/result.dat
outputs analyze
descendants analyze
ancestors /out/result.dat
usage
`
	var out strings.Builder
	if err := run(newClient(t), strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		`/out/result.dat:0 = "the result"`,
		"input = proc/1/analyze:0",
		"/out/result.dat:0\n", // outputs listing
		"/data/in.csv:0",      // ancestors listing
		"ops:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestScriptPipeAndSpawn(t *testing.T) {
	script := `
exec gen
spawn gen child
pipe gen child
append child /log one
append child /log  two
close child /log
sync
get /log
`
	var out strings.Builder
	if err := run(newClient(t), strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"onetwo"`) {
		t.Fatalf("append content wrong:\n%s", out.String())
	}
}

func TestScriptErrors(t *testing.T) {
	cases := []struct {
		name, script, wantErr string
	}{
		{"unknown command", "frobnicate", "unknown command"},
		{"unknown process", "read ghost /f", "unknown process"},
		{"missing args", "ingest /only-path", "needs 2 arguments"},
		{"get missing", "get /nope", "not found"},
		{"bad version", "prov /f abc", "invalid syntax"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(newClient(t), strings.NewReader(c.script), &strings.Builder{})
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

// TestScriptVerify drives the tamper-evidence audit from a script: the
// whole-namespace form and the single-path form, unsharded and sharded.
func TestScriptVerify(t *testing.T) {
	script := `
ingest /data/in.csv raw,data,here
exec analyze
read analyze /data/in.csv
write analyze /out/result.dat the result
close analyze /out/result.dat
exit analyze
sync
settle
verify
verify /out/result.dat
`
	for _, shards := range []int{0, 3} {
		c, err := passcloud.New(passcloud.Options{Architecture: passcloud.S3SimpleDBSQS, Seed: 1, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := run(c, strings.NewReader(script), &out); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := out.String()
		for _, want := range []string{
			"verification: OK",
			"namespace root ",
			"/out/result.dat: intact",
		} {
			if !strings.Contains(got, want) {
				t.Fatalf("shards=%d: output missing %q:\n%s", shards, want, got)
			}
		}
		wantShards := max(shards, 1)
		if n := strings.Count(got, "shard "); n < wantShards {
			t.Fatalf("shards=%d: %d shard lines, want >= %d:\n%s", shards, n, wantShards, got)
		}
	}

	// A missing path reports not-found rather than a clean bill.
	c := newClient(t)
	err := run(c, strings.NewReader("verify /nope"), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("verify of missing path: err = %v", err)
	}
}

func TestScriptReplay(t *testing.T) {
	// A derive-written file replays clean; a literal write by an
	// unregistered tool is flagged unrunnable-tool.
	script := `
ingest /data/in.csv raw,data,here
exec tee -a /out/log
read tee /data/in.csv
derive tee /out/log
close tee /out/log
exit tee
exec analyze
read analyze /data/in.csv
write analyze /out/opaque.dat the result
close analyze /out/opaque.dat
exit analyze
sync
settle
replay /out/log
replay
`
	for _, shards := range []int{0, 3} {
		c, err := passcloud.New(passcloud.Options{Architecture: passcloud.S3SimpleDBSQS, Seed: 1, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := run(c, strings.NewReader(script), &out); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := out.String()
		for _, want := range []string{
			"replay: clean — 1 derived, 1 sources, 1 processes, 2 compared",
			"replay: DIVERGED",
			"unrunnable-tool: /out/opaque.dat:0",
		} {
			if !strings.Contains(got, want) {
				t.Fatalf("shards=%d: output missing %q:\n%s", shards, want, got)
			}
		}
	}

	// A missing path reports not-found rather than an empty replay.
	c := newClient(t)
	err := run(c, strings.NewReader("replay /nope"), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("replay of missing path: err = %v", err)
	}
}

func TestParseArch(t *testing.T) {
	for name, want := range map[string]passcloud.Architecture{
		"s3":         passcloud.S3Only,
		"s3+sdb":     passcloud.S3SimpleDB,
		"s3+sdb+sqs": passcloud.S3SimpleDBSQS,
	} {
		got, err := parseArch(name)
		if err != nil || got != want {
			t.Fatalf("parseArch(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseArch("dynamo"); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	script := "\n# comment only\n\n   \n"
	if err := run(newClient(t), strings.NewReader(script), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestScriptQueryCommand(t *testing.T) {
	script := `
ingest /data/a one
ingest /data/b two
ingest /data/c three
exec analyze
read analyze /data/a
write analyze /out/result the result
close analyze /out/result
exit analyze
sync
settle
query -tool analyze -type file
query -tool analyze -descendants
query -type file -full
query -prefix /data/ -limit 2
query -limit 2 -cursor last -prefix /data/
query -explain -tool renderer -type file
`
	var out strings.Builder
	if err := run(newClient(t), strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"/out/result:0",        // tool query hit
		"type = file",          // -full shows records
		"cursor ",              // paginated query printed a resume cursor
		"plan arch=s3+sdb+sqs", // explain output
		"strategy=",            // explain strategy
		"pushdown ['name'",     // the pushed predicate appears in the plan
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestScriptQueryCursorResumption drives pagination end to end: two pages
// of two over four objects, resumed via `-cursor last`, with no overlap.
func TestScriptQueryCursorResumption(t *testing.T) {
	script := `
ingest /d/1 a
ingest /d/2 b
ingest /d/3 c
ingest /d/4 d
sync
settle
query -prefix /d/ -limit 2
query -prefix /d/ -limit 2 -cursor last
query -prefix /d/ -limit 2 -cursor last
`
	var out strings.Builder
	if err := run(newClient(t), strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for i := 1; i <= 4; i++ {
		ref := "/d/" + string(rune('0'+i)) + ":0"
		if n := strings.Count(got, ref+"\n"); n != 1 {
			t.Fatalf("ref %s appeared %d times (want once):\n%s", ref, n, got)
		}
	}
	// Page two ends exactly at the result set's end, so only page one
	// printed a cursor; the third query reports the completed sequence.
	if n := strings.Count(got, "cursor "); n != 1 {
		t.Fatalf("want exactly 1 printed cursor, got %d:\n%s", n, got)
	}
	if !strings.Contains(got, "(none)") {
		t.Fatalf("resuming a completed sequence must print (none):\n%s", got)
	}
}

func TestScriptQueryJSON(t *testing.T) {
	script := `
ingest /data/a one
sync
settle
query -json -prefix /data/ -full
query -json -explain
`
	var out strings.Builder
	if err := run(newClient(t), strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{`"ref":"/data/a:0"`, `"records"`, `"plan"`, `"est`} {
		if !strings.Contains(strings.ToLower(got), strings.ToLower(want)) {
			t.Fatalf("json output missing %q:\n%s", want, got)
		}
	}
}

func TestQuerySubcommandFlagErrors(t *testing.T) {
	cases := []string{
		"query -descendants -ancestors",
		"query -attr noequals",
		"query -ref malformed",
		"query -depth 2", // depth without a direction
	}
	for _, script := range cases {
		if err := run(newClient(t), strings.NewReader(script), &strings.Builder{}); err == nil {
			t.Fatalf("script %q accepted", script)
		}
	}
}

// TestScriptReshard drives the elastic-resharding controller from a
// script: baseline + status, a merge with a verified cutover, and the
// post-cutover verification — then the subcommand-style error cases.
func TestScriptReshard(t *testing.T) {
	script := `
ingest /data/a one
ingest /data/b two
ingest /data/c three
ingest /data/d four
exec analyze
read analyze /data/a
write analyze /out/r first result
close analyze /out/r
exit analyze
sync
settle
reshard baseline
reshard status
reshard merge 0 1
reshard status
verify
get /out/r
`
	c, err := passcloud.New(passcloud.Options{Architecture: passcloud.S3SimpleDB, Seed: 9, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(c, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"phase idle, ring epoch 0",
		"merge 0->1:",
		"phase idle, ring epoch 1",
		"verification: OK",
		`/out/r:0 = "first result"`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}

	cases := []struct{ script, wantErr string }{
		{"reshard", "want status"},
		{"reshard split", "needs a source shard"},
		{"reshard split zero", "bad source shard"},
		{"reshard frob", "unknown operation"},
		{"reshard merge 0 9", "invalid shard pair"},
	}
	for _, tc := range cases {
		c, err := passcloud.New(passcloud.Options{Architecture: passcloud.S3SimpleDB, Seed: 9, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := run(c, strings.NewReader(tc.script), &strings.Builder{}); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%q: err = %v, want containing %q", tc.script, err, tc.wantErr)
		}
	}

	// Unsharded sessions get the typed refusal.
	if err := run(newClient(t), strings.NewReader("reshard status"), &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "at least 2 shards") {
		t.Fatalf("unsharded reshard: err = %v", err)
	}
}
