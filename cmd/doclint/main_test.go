package main

import (
	"os"
	"path/filepath"
	"testing"
)

// lintedPackages is the repository's doc-comment contract: every exported
// identifier in these packages must carry a doc comment. CI's docs job
// runs the same list via the command; this test makes `go test ./...`
// enforce it too.
var lintedPackages = []string{
	".",
	"internal/core",
	"internal/core/shard",
	"internal/prov",
	"internal/cloud",
	"internal/cloud/retry",
	"internal/cloud/billing",
	"internal/workload",
	"internal/replay",
	"internal/analysis",
	"internal/analysis/analysistest",
	"internal/leakcheck",
	"cmd/passvet",
}

// lintedMarkdown are the documents whose relative links must resolve.
var lintedMarkdown = []string{"README.md", "ARCHITECTURE.md"}

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestExportedDocComments fails on any exported identifier without a doc
// comment in the linted packages.
func TestExportedDocComments(t *testing.T) {
	root := repoRoot(t)
	for _, pkg := range lintedPackages {
		findings, err := lintDir(filepath.Join(root, pkg))
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, f := range findings {
			t.Error(f)
		}
	}
}

// TestMarkdownLinks fails on broken relative links in the core documents.
func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	for _, file := range lintedMarkdown {
		findings, err := lintMarkdown(filepath.Join(root, file))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, f := range findings {
			t.Error(f)
		}
	}
}

// TestLintDetectsViolations guards the linter itself: a synthetic file
// with known violations must produce exactly those findings.
func TestLintDetectsViolations(t *testing.T) {
	dir := t.TempDir()
	src := `package x

type Undocumented struct{}

func Exported() {}

// Documented is fine.
func Documented() {}

const MissingDoc = 1

// Grouped doc covers the block.
const (
	A = 1
	B = 2
)

func (u *Undocumented) Method() {}

type hidden struct{}

func (h hidden) Skipped() {}
`
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 4 {
		t.Fatalf("expected 4 findings, got %d: %v", len(findings), findings)
	}

	md := filepath.Join(dir, "doc.md")
	if err := os.WriteFile(md, []byte("see [here](missing.md) and [ok](x.go) and [web](https://example.com)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	links, err := lintMarkdown(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 1 {
		t.Fatalf("expected 1 broken link, got %v", links)
	}
}
