// Command doclint is the repository's documentation gate, run by the CI
// docs job (and by its own test, so `go test ./...` enforces it too). It
// checks two things:
//
//   - every exported identifier (types, functions, methods, package-level
//     consts and vars) in the given package directories carries a doc
//     comment — the `revive` exported rule, self-contained so the gate
//     needs nothing the toolchain does not already ship;
//   - every relative link in the given markdown files resolves to a file
//     or directory in the repository (-md), so README/ARCHITECTURE cannot
//     silently rot.
//
// Usage:
//
//	doclint ./ ./internal/core ./internal/prov
//	doclint -md README.md -md ARCHITECTURE.md ./...
//
// Exit status 1 when any finding is reported. doclint checks that the
// code is explained; its companion gate, cmd/passvet, checks that the
// code obeys the store's concurrency, determinism, and metering
// invariants.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// mdFlags collects repeated -md flags.
type mdFlags []string

// String implements flag.Value.
func (m *mdFlags) String() string { return strings.Join(*m, ",") }

// Set implements flag.Value.
func (m *mdFlags) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var md mdFlags
	flag.Var(&md, "md", "markdown file whose relative links must resolve (repeatable)")
	flag.Parse()

	var findings []string
	for _, dir := range flag.Args() {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, file := range md {
		fs, err := lintMarkdown(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintDir reports every exported identifier in dir (non-test files) that
// lacks a doc comment, as "file:line: name" strings.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return findings, nil
}

// exportedReceiver reports whether a method's receiver type is exported
// (functions have no receiver and pass). Methods on unexported types are
// not part of the package API.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// lintGenDecl checks type/const/var declarations. A doc comment on the
// grouped declaration covers every spec inside it (the const-block idiom);
// otherwise each exported spec needs its own.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && !groupDoc {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil || groupDoc {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}

// mdLink matches inline markdown links, image links included (their
// `[alt](target)` tail matches); autolinks (<http://...>) do not match.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// lintMarkdown reports relative links in file that do not resolve to an
// existing file or directory (anchors are stripped; absolute URLs skip).
func lintMarkdown(file string) ([]string, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var findings []string
	base := filepath.Dir(file)
	for i, line := range strings.Split(string(raw), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				findings = append(findings, fmt.Sprintf("%s:%d: broken relative link %q", file, i+1, m[1]))
			}
		}
	}
	return findings, nil
}
