package passcloud

import (
	"context"
	"fmt"
	"sync"

	"passcloud/internal/cloud"
	"passcloud/internal/core"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/core/shard"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// Region is one simulated AWS region shared by several clients — the
// paper's usage model: "multiple clients can concurrently update different
// objects at the same time", and in the third architecture "each client has
// an SQS queue that it uses as a write-ahead log".
//
// All clients of a region see the same buckets and provenance domain;
// clients of the WAL architecture each get their own queue and commit
// daemon. Provenance written by one client is queryable by every other
// (after Sync/Settle), which is the whole point of a provenance-aware
// shared cloud.
//
// With Options.Shards or Options.Tenant set, the region hosts multiple
// isolated namespaces: clients of the same tenant share that tenant's
// shard namespaces; clients of different tenants (NewTenantClient) share
// nothing but the simulated clock.
type Region struct {
	opts  Options
	cloud *cloud.Cloud // unsharded substrate; nil when sharded
	multi *cloud.Multi // multi-namespace substrate; nil when unsharded

	mu       sync.Mutex
	nclients int
}

// NewRegion builds a shared region. Options.ClientID is ignored here; each
// client gets its own.
func NewRegion(opts Options) (*Region, error) {
	switch opts.Architecture {
	case S3Only, S3SimpleDB, S3SimpleDBSQS:
	default:
		return nil, fmt.Errorf("passcloud: unknown architecture %v", opts.Architecture)
	}
	cfg := cloud.Config{Seed: opts.Seed, MaxDelay: opts.ConsistencyDelay}
	if sharded(opts) {
		return &Region{opts: opts, multi: cloud.NewMulti(cfg)}, nil
	}
	return &Region{opts: opts, cloud: cloud.New(cfg)}, nil
}

// NewClient attaches a client to the region. An empty id is assigned
// automatically.
func (r *Region) NewClient(id string) (*Client, error) {
	return r.NewTenantClient(r.opts.Tenant, id)
}

// NewTenantClient attaches a client to the region under the named tenant.
// Tenants are isolated: their namespaces (buckets, domains, queues,
// billing meters) are disjoint, so one tenant's clients can never read —
// or pay for — another tenant's provenance. Requires a sharded or
// tenant-labelled region (Options.Shards or Options.Tenant set); on a
// plain region the tenant must match the region's (empty) tenant.
func (r *Region) NewTenantClient(tenant, id string) (*Client, error) {
	r.mu.Lock()
	r.nclients++
	if id == "" {
		id = fmt.Sprintf("client%d", r.nclients)
	}
	r.mu.Unlock()

	opts := r.opts
	opts.ClientID = id
	opts.Tenant = tenant
	if r.multi != nil {
		return newShardedClient(r.multi, opts)
	}
	if tenant != "" {
		return nil, fmt.Errorf("passcloud: region was built without tenancy (set Options.Shards or Options.Tenant)")
	}
	return newClientOn(r.cloud, opts)
}

// Settle advances the region's clock past the replication horizon.
func (r *Region) Settle() {
	if r.multi != nil {
		r.multi.Settle()
		return
	}
	r.cloud.Settle()
}

// Usage summarizes the whole region's bill (all clients, all tenants).
func (r *Region) Usage() UsageSummary {
	if r.multi != nil {
		return usageFrom(r.multi.Combined())
	}
	return usageSummary(r.cloud)
}

// newClientOn builds a client against an existing single-namespace
// region. New and Region.NewClient funnel through here when unsharded.
func newClientOn(cl *cloud.Cloud, opts Options) (*Client, error) {
	c := &Client{opts: opts, cloud: cl}

	st, daemon, err := newStoreOn(cl, opts, opts.ClientID)
	if err != nil {
		return nil, err
	}
	c.store = st
	c.shardStores = []shard.Store{st}
	if daemon != nil {
		c.daemons = append(c.daemons, daemon)
	}
	c.sys = pass.NewSystem(pass.Config{
		Kernel:       opts.Kernel,
		Namespace:    opts.ClientID,
		Flush:        core.Flusher(c.store),
		DisableChain: opts.DisableIntegrity,
	})
	return c, nil
}

// newStoreOn builds one architecture store (and its commit daemon, for
// the WAL design) on one namespace.
func newStoreOn(cl *cloud.Cloud, opts Options, clientID string) (shard.Store, *s3sdbsqs.CommitDaemon, error) {
	switch opts.Architecture {
	case S3Only:
		st, err := s3only.New(s3only.Config{
			Cloud: cl, Bucket: opts.Bucket, DisableQueryCache: opts.DisableQueryCache,
			Writer: clientLabel(clientID), DisableIntegrity: opts.DisableIntegrity,
		})
		return st, nil, err
	case S3SimpleDB:
		st, err := s3sdb.New(s3sdb.Config{
			Cloud: cl, Bucket: opts.Bucket, Domain: opts.Domain,
			DisableQueryCache: opts.DisableQueryCache,
			Writer:            clientLabel(clientID), DisableIntegrity: opts.DisableIntegrity,
		})
		return st, nil, err
	case S3SimpleDBSQS:
		st, err := s3sdbsqs.New(s3sdbsqs.Config{
			Cloud: cl, Bucket: opts.Bucket, Domain: opts.Domain, ClientID: clientID,
			DisableQueryCache: opts.DisableQueryCache, DisableIntegrity: opts.DisableIntegrity,
		})
		if err != nil {
			return nil, nil, err
		}
		return st, s3sdbsqs.NewCommitDaemon(st, nil), nil
	default:
		return nil, nil, fmt.Errorf("passcloud: unknown architecture %v", opts.Architecture)
	}
}

// tenantLabel is the namespace prefix a tenant's shards live under.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// newShardedClient builds a client whose store is a consistent-hash
// router over per-shard stores, each on its own namespace of the shared
// multi-namespace region. Namespace (billing) keys are
// "<tenant>/shard<i>", so clients of one tenant share state while
// tenants stay isolated.
func newShardedClient(m *cloud.Multi, opts Options) (*Client, error) {
	n := opts.Shards
	if n <= 0 {
		n = 1
	}
	c := &Client{opts: opts, multi: m}
	stores := make([]shard.Store, n)
	for i := 0; i < n; i++ {
		cl := m.Namespace(fmt.Sprintf("%s/shard%d", tenantLabel(opts.Tenant), i))
		st, daemon, err := newStoreOn(cl, opts, fmt.Sprintf("%s-s%d", clientLabel(opts.ClientID), i))
		if err != nil {
			return nil, err
		}
		stores[i] = st
		c.shardClouds = append(c.shardClouds, cl)
		if daemon != nil {
			c.daemons = append(c.daemons, daemon)
		}
	}
	if n == 1 {
		c.store = stores[0]
	} else {
		r, err := shard.New(shard.Config{Shards: stores})
		if err != nil {
			return nil, err
		}
		c.store = r
		c.router = r
	}
	c.shardStores = stores
	c.sys = pass.NewSystem(pass.Config{
		Kernel:       opts.Kernel,
		Namespace:    opts.ClientID,
		Flush:        core.Flusher(c.store),
		DisableChain: opts.DisableIntegrity,
	})
	return c, nil
}

// clientLabel defaults an empty client id (the WAL queue name needs one).
func clientLabel(id string) string {
	if id == "" {
		return "client0"
	}
	return id
}

// Dependents returns every object version that directly consumed any
// version of path — the provenance-aware deletion check. It compiles to
// the descriptor {RefPrefix: path + ":", Direction: TraverseDescendants,
// Depth: 1, IncludeSeeds: true}: one indexed starts-with query on the
// SimpleDB architectures.
//
// Deprecated: use Search with a QuerySpec.
func (c *Client) Dependents(ctx context.Context, path string) ([]Ref, error) {
	q, err := c.querier()
	if err != nil {
		return nil, err
	}
	refs, err := core.Dependents(ctx, q, prov.ObjectID(path))
	return toPublicRefs(refs), err
}

// ErrHasDependents is returned by SafeDelete when living derivations exist.
type ErrHasDependents struct {
	Object     string
	Dependents []Ref
}

// Error implements the error interface.
func (e *ErrHasDependents) Error() string {
	return fmt.Sprintf("passcloud: %s has %d dependent object versions; refusing to delete",
		e.Object, len(e.Dependents))
}

// SafeDelete removes path's data only if nothing in the repository derives
// from it — the kind of provenance-aware behaviour the paper's §7 suggests
// a cloud could offer once it holds the provenance ("the provenance stored
// with the data presents AWS cloud with many hints"). The provenance record
// itself is retained: lineage of deleted data is still history.
func (c *Client) SafeDelete(ctx context.Context, path string) error {
	deps, err := c.Dependents(ctx, path)
	if err != nil {
		return err
	}
	if len(deps) > 0 {
		return &ErrHasDependents{Object: path, Dependents: deps}
	}
	return c.deleteData(path)
}

// deleteData removes the object's data from S3 (architecture-independent:
// all three keep data under the same key scheme). On a sharded client the
// delete routes to the object's home namespace.
func (c *Client) deleteData(path string) error {
	cl := c.cloud
	if len(c.shardClouds) > 0 {
		i := 0
		if c.router != nil {
			i = c.router.ShardFor(prov.ObjectID(path))
		}
		cl = c.shardClouds[i]
	}
	return cl.S3.Delete(c.bucketName(), "data"+path)
}

// bucketName resolves the configured or default bucket.
func (c *Client) bucketName() string {
	if c.opts.Bucket != "" {
		return c.opts.Bucket
	}
	return "pass"
}

// usageSummary converts a cloud's meters into the public summary.
func usageSummary(cl *cloud.Cloud) UsageSummary {
	return usageFrom(cl.Usage())
}
