package passcloud

import (
	"context"
	"fmt"
	"sync"

	"passcloud/internal/cloud"
	"passcloud/internal/core"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// Region is one simulated AWS region shared by several clients — the
// paper's usage model: "multiple clients can concurrently update different
// objects at the same time", and in the third architecture "each client has
// an SQS queue that it uses as a write-ahead log".
//
// All clients of a region see the same buckets and provenance domain;
// clients of the WAL architecture each get their own queue and commit
// daemon. Provenance written by one client is queryable by every other
// (after Sync/Settle), which is the whole point of a provenance-aware
// shared cloud.
type Region struct {
	opts  Options
	cloud *cloud.Cloud

	mu       sync.Mutex
	nclients int
}

// NewRegion builds a shared region. Options.ClientID is ignored here; each
// client gets its own.
func NewRegion(opts Options) (*Region, error) {
	switch opts.Architecture {
	case S3Only, S3SimpleDB, S3SimpleDBSQS:
	default:
		return nil, fmt.Errorf("passcloud: unknown architecture %v", opts.Architecture)
	}
	return &Region{
		opts: opts,
		cloud: cloud.New(cloud.Config{
			Seed:     opts.Seed,
			MaxDelay: opts.ConsistencyDelay,
		}),
	}, nil
}

// NewClient attaches a client to the region. An empty id is assigned
// automatically.
func (r *Region) NewClient(id string) (*Client, error) {
	r.mu.Lock()
	r.nclients++
	if id == "" {
		id = fmt.Sprintf("client%d", r.nclients)
	}
	r.mu.Unlock()

	opts := r.opts
	opts.ClientID = id
	return newClientOn(r.cloud, opts)
}

// Settle advances the region's clock past the replication horizon.
func (r *Region) Settle() { r.cloud.Settle() }

// Usage summarizes the whole region's bill (all clients).
func (r *Region) Usage() UsageSummary {
	return usageSummary(r.cloud)
}

// newClientOn builds a client against an existing region. Both New and
// Region.NewClient funnel through here.
func newClientOn(cl *cloud.Cloud, opts Options) (*Client, error) {
	c := &Client{opts: opts, cloud: cl}

	var err error
	switch opts.Architecture {
	case S3Only:
		c.store, err = s3only.New(s3only.Config{
			Cloud: cl, Bucket: opts.Bucket, DisableQueryCache: opts.DisableQueryCache,
		})
	case S3SimpleDB:
		c.store, err = s3sdb.New(s3sdb.Config{
			Cloud: cl, Bucket: opts.Bucket, Domain: opts.Domain,
			DisableQueryCache: opts.DisableQueryCache,
		})
	case S3SimpleDBSQS:
		var st *s3sdbsqs.Store
		st, err = s3sdbsqs.New(s3sdbsqs.Config{
			Cloud: cl, Bucket: opts.Bucket, Domain: opts.Domain, ClientID: opts.ClientID,
			DisableQueryCache: opts.DisableQueryCache,
		})
		if err == nil {
			c.store = st
			c.daemon = s3sdbsqs.NewCommitDaemon(st, nil)
		}
	default:
		err = fmt.Errorf("passcloud: unknown architecture %v", opts.Architecture)
	}
	if err != nil {
		return nil, err
	}
	c.sys = pass.NewSystem(pass.Config{
		Kernel:    opts.Kernel,
		Namespace: opts.ClientID,
		Flush:     core.Flusher(c.store),
	})
	return c, nil
}

// Dependents returns every object version that directly consumed any
// version of path — the provenance-aware deletion check. It compiles to
// the descriptor {RefPrefix: path + ":", Direction: TraverseDescendants,
// Depth: 1, IncludeSeeds: true}: one indexed starts-with query on the
// SimpleDB architectures.
//
// Deprecated: use Search with a QuerySpec.
func (c *Client) Dependents(ctx context.Context, path string) ([]Ref, error) {
	q, err := c.querier()
	if err != nil {
		return nil, err
	}
	refs, err := core.Dependents(ctx, q, prov.ObjectID(path))
	return toPublicRefs(refs), err
}

// ErrHasDependents is returned by SafeDelete when living derivations exist.
type ErrHasDependents struct {
	Object     string
	Dependents []Ref
}

// Error implements the error interface.
func (e *ErrHasDependents) Error() string {
	return fmt.Sprintf("passcloud: %s has %d dependent object versions; refusing to delete",
		e.Object, len(e.Dependents))
}

// SafeDelete removes path's data only if nothing in the repository derives
// from it — the kind of provenance-aware behaviour the paper's §7 suggests
// a cloud could offer once it holds the provenance ("the provenance stored
// with the data presents AWS cloud with many hints"). The provenance record
// itself is retained: lineage of deleted data is still history.
func (c *Client) SafeDelete(ctx context.Context, path string) error {
	deps, err := c.Dependents(ctx, path)
	if err != nil {
		return err
	}
	if len(deps) > 0 {
		return &ErrHasDependents{Object: path, Dependents: deps}
	}
	return c.deleteData(path)
}

// deleteData removes the object's data from S3 (architecture-independent:
// all three keep data under the same key scheme).
func (c *Client) deleteData(path string) error {
	return c.cloud.S3.Delete(c.bucketName(), "data"+path)
}

// bucketName resolves the configured or default bucket.
func (c *Client) bucketName() string {
	if c.opts.Bucket != "" {
		return c.opts.Bucket
	}
	return "pass"
}

// usageSummary converts a cloud's meters into the public summary.
func usageSummary(cl *cloud.Cloud) UsageSummary {
	return usageFrom(cl.Usage())
}
