package passcloud

import (
	"errors"
	"fmt"
	"testing"
)

// TestVerifyCleanAfterPipeline: a healthy run must verify with zero
// divergences on every architecture, unsharded and sharded, and
// VerifyLineage must see every stored version of a chained object.
func TestVerifyCleanAfterPipeline(t *testing.T) {
	for _, arch := range allArchitectures {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/shards%d", arch, shards), func(t *testing.T) {
				c, err := New(Options{Architecture: arch, Seed: 42, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				runPipeline(t, c)

				rep, err := c.VerifyAll(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Clean() {
					for _, d := range rep.Divergences() {
						t.Errorf("healthy run flagged: %s", d)
					}
				}
				if rep.NamespaceRoot == "" {
					t.Error("namespace root is empty")
				}
				want := max(shards, 1)
				if len(rep.Shards) != want {
					t.Errorf("verified %d shards, want %d", len(rep.Shards), want)
				}

				lin, err := c.VerifyLineage(ctx, "/results/trends.dat")
				if err != nil {
					t.Fatal(err)
				}
				if !lin.Clean() {
					t.Errorf("lineage divergences: %v", lin.Divergences)
				}
				if lin.Versions == 0 {
					t.Error("lineage saw zero stored versions")
				}

				if _, err := c.VerifyLineage(ctx, "/no/such/file"); !errors.Is(err, ErrNotFound) {
					t.Errorf("missing object: got %v, want ErrNotFound", err)
				}
			})
		}
	}
}

// TestIntegrityOpCountParity: the tamper-evidence subsystem rides writes
// the architectures already issue — chain records travel inside flushed
// record sets and checkpoints ride as metadata/attributes on those same
// calls — so an identical workload must issue an identical number of
// cloud operations per service with integrity on and off. This is the
// zero-overhead claim in testable form.
func TestIntegrityOpCountParity(t *testing.T) {
	for _, arch := range allArchitectures {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/shards%d", arch, shards), func(t *testing.T) {
				run := func(disable bool) UsageSummary {
					c, err := New(Options{Architecture: arch, Seed: 42, Shards: shards, DisableIntegrity: disable})
					if err != nil {
						t.Fatal(err)
					}
					runPipeline(t, c)
					return c.Usage()
				}
				on, off := run(false), run(true)
				if on.S3Ops != off.S3Ops {
					t.Errorf("S3 ops: %d with integrity, %d without", on.S3Ops, off.S3Ops)
				}
				if on.SimpleDBOps != off.SimpleDBOps {
					t.Errorf("SimpleDB ops: %d with integrity, %d without", on.SimpleDBOps, off.SimpleDBOps)
				}
				if on.SQSOps != off.SQSOps {
					t.Errorf("SQS ops: %d with integrity, %d without", on.SQSOps, off.SQSOps)
				}
			})
		}
	}
}

// TestVerifyReportsDisabledIntegrity: with the subsystem off, stored
// record sets carry no chain records, and verification says so rather
// than reporting a clean bill it cannot certify.
func TestVerifyReportsDisabledIntegrity(t *testing.T) {
	c, err := New(Options{Architecture: S3SimpleDB, Seed: 42, DisableIntegrity: true})
	if err != nil {
		t.Fatal(err)
	}
	runPipeline(t, c)
	rep, err := c.VerifyAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("integrity-disabled store verified clean; chain-missing findings expected")
	}
	for _, d := range rep.Divergences() {
		if d.Kind != "chain-missing" && d.Kind != "checkpoint-missing" {
			t.Errorf("unexpected divergence kind %q: %s", d.Kind, d)
		}
	}
}
