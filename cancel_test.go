package passcloud

// Context-cancellation tests for the batch-first store contract: a context
// cancelled mid-batch must abort the PutBatch on every architecture
// without corrupting durable state. The batch-replay contract (pass.System
// marks nothing flushed on error) then lets a retry with a live context
// persist everything, and verified reads must succeed afterwards.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"passcloud/internal/cloud"
	"passcloud/internal/core"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// cancelAfterChecks is a context that reports cancellation only after its
// Err method has been consulted n times — a deterministic way to land the
// cancellation in the middle of a batch, between cloud calls, without
// depending on wall-clock timing.
type cancelAfterChecks struct {
	context.Context
	mu sync.Mutex
	n  int
}

func (c *cancelAfterChecks) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n <= 0 {
		return context.Canceled
	}
	c.n--
	return nil
}

// cancelBatch builds a ten-event batch: nine transient ancestors and one
// file that closes the chain.
func cancelBatch() []pass.FlushEvent {
	var batch []pass.FlushEvent
	var inputs []prov.Ref
	for i := 0; i < 9; i++ {
		ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("proc/%d/stage", i+1)), Version: 0}
		batch = append(batch, pass.FlushEvent{Ref: ref, Type: prov.TypeProcess, Records: []prov.Record{
			prov.NewString(ref, prov.AttrType, prov.TypeProcess),
			prov.NewString(ref, prov.AttrName, "stage"),
		}})
		inputs = append(inputs, ref)
	}
	fileRef := prov.Ref{Object: "/pipeline/out", Version: 0}
	records := []prov.Record{
		prov.NewString(fileRef, prov.AttrType, prov.TypeFile),
		prov.NewString(fileRef, prov.AttrName, "/pipeline/out"),
	}
	for _, in := range inputs {
		records = append(records, prov.NewInput(fileRef, in))
	}
	batch = append(batch, pass.FlushEvent{Ref: fileRef, Type: prov.TypeFile, Data: []byte("result"), Records: records})
	return batch
}

func TestPutBatchCancellationAborts(t *testing.T) {
	type env struct {
		cloud *cloud.Cloud
		store core.Store
		// settle runs any background machinery needed before reads.
		settle func(ctx context.Context) error
	}
	builds := map[string]func(t *testing.T) *env{
		"s3": func(t *testing.T) *env {
			cl := cloud.New(cloud.Config{Seed: 7})
			st, err := s3only.New(s3only.Config{Cloud: cl})
			if err != nil {
				t.Fatal(err)
			}
			return &env{cloud: cl, store: st}
		},
		"s3+sdb": func(t *testing.T) *env {
			cl := cloud.New(cloud.Config{Seed: 7})
			st, err := s3sdb.New(s3sdb.Config{Cloud: cl})
			if err != nil {
				t.Fatal(err)
			}
			return &env{cloud: cl, store: st}
		},
		"s3+sdb+sqs": func(t *testing.T) *env {
			cl := cloud.New(cloud.Config{Seed: 7})
			st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl})
			if err != nil {
				t.Fatal(err)
			}
			daemon := s3sdbsqs.NewCommitDaemon(st, nil)
			return &env{cloud: cl, store: st, settle: func(ctx context.Context) error {
				for i := 0; i < 10; i++ {
					n, err := daemon.RunOnce(ctx, true)
					if err != nil {
						return err
					}
					if n == 0 && daemon.PendingTransactions() == 0 {
						return nil
					}
					cl.Settle()
				}
				return errors.New("daemon did not drain")
			}}
		},
	}

	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			e := build(t)
			batch := cancelBatch()

			// Cancel a few checks into the batch: the call must surface
			// context.Canceled, not mask it or hang.
			cctx := &cancelAfterChecks{Context: context.Background(), n: 4}
			if err := e.store.PutBatch(cctx, batch); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled PutBatch: err = %v, want context.Canceled", err)
			}

			// The retry contract: replaying the whole batch with a live
			// context must leave fully consistent, verified state — the
			// partial first attempt (buffered records, an uncommitted WAL
			// transaction, a stranded provenance item) must not corrupt it.
			ctx := context.Background()
			if err := e.store.PutBatch(ctx, batch); err != nil {
				t.Fatalf("retried PutBatch: %v", err)
			}
			if err := core.SyncStore(ctx, e.store); err != nil {
				t.Fatalf("sync: %v", err)
			}
			if e.settle != nil {
				if err := e.settle(ctx); err != nil {
					t.Fatal(err)
				}
			}
			e.cloud.Settle()

			obj, err := e.store.Get(ctx, "/pipeline/out")
			if err != nil {
				t.Fatalf("Get after retry: %v", err)
			}
			if string(obj.Data) != "result" {
				t.Fatalf("data = %q", obj.Data)
			}
			// The whole ancestor chain made it, not a half-verified prefix.
			q, ok := e.store.(core.Querier)
			if !ok {
				t.Fatal("store is not a Querier")
			}
			all, err := core.AllProvenance(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range batch {
				got, ok := all[ev.Ref]
				if !ok {
					t.Fatalf("subject %v missing after retried batch", ev.Ref)
				}
				// And exactly once: the aborted first attempt must not
				// leave buffered records that the replay duplicates.
				if len(got) != len(ev.Records) {
					t.Fatalf("subject %v has %d records after retry, want %d (replay duplication)",
						ev.Ref, len(got), len(ev.Records))
				}
			}
		})
	}
}

// TestCancelledCloseKeepsVersionsPending exercises the same contract
// through the public API: a cancelled Close leaves every version pending
// (nothing marked flushed), and a later Close persists the whole chain.
func TestCancelledCloseKeepsVersionsPending(t *testing.T) {
	c, err := New(Options{Architecture: S3SimpleDB, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(ctx, "/in", []byte("source")); err != nil {
		t.Fatal(err)
	}
	p := c.Exec(nil, ProcessSpec{Name: "tool", Argv: []string{"tool"}})
	if err := p.Read("/in"); err != nil {
		t.Fatal(err)
	}
	if err := p.Write("/out", []byte("derived")); err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Close(cancelled, "/out"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Close: err = %v, want context.Canceled", err)
	}
	if _, err := c.Get(ctx, "/out"); !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNoProvenance) {
		t.Fatalf("object visible after cancelled close: %v", err)
	}

	if err := p.Close(ctx, "/out"); err != nil {
		t.Fatalf("retried Close: %v", err)
	}
	obj, err := c.Get(ctx, "/out")
	if err != nil {
		t.Fatalf("Get after retried close: %v", err)
	}
	if string(obj.Data) != "derived" {
		t.Fatalf("data = %q", obj.Data)
	}
}
