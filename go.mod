module passcloud

go 1.24
