package passcloud

// The benchmark harness regenerates every table in the paper's evaluation
// (§5) as a testing.B benchmark, plus ablations for the design decisions
// the paper argues for. Custom metrics carry the table values:
//
//	go test -bench 'Table' -benchmem
//
// Table 1 -> BenchmarkTable1Properties
// Table 2 -> BenchmarkTable2Storage/<arch>     (provops/object, overhead%)
// Table 3 -> BenchmarkTable3Queries/<q>/<backend> (ops/query, bytes/query)
//
// cmd/passbench prints the same tables in the paper's layout at larger
// scales; benches run at small scale so `go test -bench .` stays quick.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/core/props"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/cost"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

const benchScale = 0.005 // keeps each load around a thousand events

// BenchmarkTable1Properties measures the full property-verification matrix
// (Table 1): every architecture through every crash, consistency, causal
// and efficiency scenario.
func BenchmarkTable1Properties(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		for _, h := range props.StandardHarnesses(int64(i + 1)) {
			report, err := props.Check(ctx, h)
			if err != nil {
				b.Fatal(err)
			}
			if report.Measured != report.Claimed {
				b.Fatalf("%s: measured %+v != claimed %+v", h.Name, report.Measured, report.Claimed)
			}
		}
	}
}

// BenchmarkTable2Storage loads the combined workload into one architecture
// per sub-benchmark and reports the paper's Table 2 quantities.
func BenchmarkTable2Storage(b *testing.B) {
	type build func(cl *cloud.Cloud) (core.Store, func(context.Context) error, error)
	builds := map[string]build{
		"s3": func(cl *cloud.Cloud) (core.Store, func(context.Context) error, error) {
			st, err := s3only.New(s3only.Config{Cloud: cl})
			return st, nil, err
		},
		"s3+sdb": func(cl *cloud.Cloud) (core.Store, func(context.Context) error, error) {
			st, err := s3sdb.New(s3sdb.Config{Cloud: cl})
			return st, nil, err
		},
		"s3+sdb+sqs": func(cl *cloud.Cloud) (core.Store, func(context.Context) error, error) {
			st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl})
			if err != nil {
				return nil, nil, err
			}
			daemon := s3sdbsqs.NewCommitDaemon(st, nil)
			drain := func(ctx context.Context) error {
				for {
					n, err := daemon.RunOnce(ctx, true)
					if err != nil {
						return err
					}
					if n == 0 && daemon.PendingTransactions() == 0 {
						return nil
					}
					cl.Settle()
				}
			}
			return st, drain, nil
		},
	}
	ctx := context.Background()
	for _, name := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
		mk := builds[name]
		b.Run(name, func(b *testing.B) {
			var provOps, objects, provBytes, rawBytes int64
			for i := 0; i < b.N; i++ {
				cl := cloud.New(cloud.Config{Seed: int64(i + 1)})
				st, drain, err := mk(cl)
				if err != nil {
					b.Fatal(err)
				}
				setup := cl.Usage().TotalOps()
				collector := &cost.Collector{}
				sys := pass.NewSystem(pass.Config{Flush: collector.Tee(core.Flusher(st))})
				if err := workload.Run(ctx, sys, sim.NewRNG(int64(i+1)), workload.NewCombined(benchScale)); err != nil {
					b.Fatal(err)
				}
				if err := core.SyncStore(ctx, st); err != nil {
					b.Fatal(err)
				}
				if drain != nil {
					if err := drain(ctx); err != nil {
						b.Fatal(err)
					}
				}
				u := cl.Usage()
				objects += collector.Stats.Objects
				rawBytes += collector.Stats.DataBytes
				provOps += u.TotalOps() - setup - collector.Stats.Objects
				provBytes += u.Storage(billing.S3) - collector.Stats.DataBytes +
					u.Storage(billing.SimpleDB) + u.BytesIn(billing.SQS) + u.BytesOut(billing.SQS)
			}
			b.ReportMetric(float64(provOps)/float64(objects), "provops/object")
			b.ReportMetric(100*float64(provBytes)/float64(rawBytes), "overhead%")
		})
	}
}

// table3Backend is one loaded query backend: an architecture with the
// snapshot cache either disabled (the paper's pay-per-query shape) or
// enabled (the query-performance subsystem).
type table3Backend struct {
	cloud   *cloud.Cloud
	querier core.Querier
}

// table3Env holds the shared loaded datasets for query benches, built once:
// S3-only and SimpleDB backends, each in cached and uncached trim.
type table3Env struct {
	backends map[string]*table3Backend // "S3/uncached", "SimpleDB/cached", ...
}

var (
	table3Once sync.Once
	table3     *table3Env
	table3Err  error
)

func loadTable3(b *testing.B) *table3Env {
	b.Helper()
	table3Once.Do(func() {
		ctx := context.Background()
		env := &table3Env{backends: make(map[string]*table3Backend)}
		for _, cached := range []bool{false, true} {
			trim := "uncached"
			if cached {
				trim = "cached"
			}

			cl := cloud.New(cloud.Config{Seed: 9})
			st1, err := s3only.New(s3only.Config{Cloud: cl, DisableQueryCache: !cached})
			if err != nil {
				table3Err = err
				return
			}
			sys := pass.NewSystem(pass.Config{Flush: core.Flusher(st1)})
			if table3Err = workload.Run(ctx, sys, sim.NewRNG(9), workload.NewCombined(benchScale)); table3Err != nil {
				return
			}
			if table3Err = core.SyncStore(ctx, st1); table3Err != nil {
				return
			}
			env.backends["S3/"+trim] = &table3Backend{cloud: cl, querier: st1}

			cl2 := cloud.New(cloud.Config{Seed: 9})
			st2, err := s3sdb.New(s3sdb.Config{Cloud: cl2, DisableQueryCache: !cached})
			if err != nil {
				table3Err = err
				return
			}
			sys = pass.NewSystem(pass.Config{Flush: core.Flusher(st2)})
			if table3Err = workload.Run(ctx, sys, sim.NewRNG(9), workload.NewCombined(benchScale)); table3Err != nil {
				return
			}
			env.backends["SimpleDB/"+trim] = &table3Backend{cloud: cl2, querier: st2}
		}
		table3 = env
	})
	if table3Err != nil {
		b.Fatal(table3Err)
	}
	return table3
}

// BenchmarkTable3Queries measures Q.1/Q.2/Q.3 per backend and reports
// ops/query plus wall time. The uncached variants reproduce Table 3's
// shape (S3 pays a full scan per query; SimpleDB a handful of indexed
// queries). The cached variants measure the query-performance subsystem on
// repeated queries over an unchanged repository: the first iteration may
// build the snapshot, every further iteration answers from it, so at any
// realistic b.N the amortized ops/query is ~0.
func BenchmarkTable3Queries(b *testing.B) {
	env := loadTable3(b)
	ctx := context.Background()
	const tool = "softmean"

	queries := []struct {
		name string
		run  func(q core.Querier) error
	}{
		{"Q1", func(q core.Querier) error { _, err := core.AllProvenance(ctx, q); return err }},
		{"Q2", func(q core.Querier) error { _, err := core.OutputsOf(ctx, q, tool); return err }},
		{"Q3", func(q core.Querier) error { _, err := core.DescendantsOfOutputs(ctx, q, tool); return err }},
	}
	for _, query := range queries {
		for _, backend := range []string{"S3", "SimpleDB"} {
			for _, trim := range []string{"uncached", "cached"} {
				be := env.backends[backend+"/"+trim]
				run := query.run
				b.Run(query.name+"/"+backend+"/"+trim, func(b *testing.B) {
					before := be.cloud.Usage().TotalOps()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := run(be.querier); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					ops := be.cloud.Usage().TotalOps() - before
					b.ReportMetric(float64(ops)/float64(b.N), "ops/query")
				})
			}
		}
	}
}

// BenchmarkRepeatedQueryAmortization isolates the repeat-query cost the
// snapshot cache is for: one primed backend, b.N identical queries, zero
// expected cloud ops per query (the priming scan is excluded).
func BenchmarkRepeatedQueryAmortization(b *testing.B) {
	env := loadTable3(b)
	ctx := context.Background()
	const tool = "softmean"
	for _, backend := range []string{"S3", "SimpleDB"} {
		be := env.backends[backend+"/cached"]
		b.Run(backend, func(b *testing.B) {
			if _, err := core.OutputsOf(ctx, be.querier, tool); err != nil {
				b.Fatal(err) // prime the snapshot
			}
			before := be.cloud.Usage().TotalOps()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.OutputsOf(ctx, be.querier, tool); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ops := be.cloud.Usage().TotalOps() - before
			b.ReportMetric(float64(ops)/float64(b.N), "ops/query")
		})
	}
}

// BenchmarkPutPath measures the per-object store cost of each architecture
// (the client-visible write latency the paper's future-work prototype was
// to measure).
func BenchmarkPutPath(b *testing.B) {
	ctx := context.Background()
	type mk func(cl *cloud.Cloud) (core.Store, error)
	archs := map[string]mk{
		"s3": func(cl *cloud.Cloud) (core.Store, error) {
			return s3only.New(s3only.Config{Cloud: cl})
		},
		"s3+sdb": func(cl *cloud.Cloud) (core.Store, error) {
			return s3sdb.New(s3sdb.Config{Cloud: cl})
		},
		"s3+sdb+sqs": func(cl *cloud.Cloud) (core.Store, error) {
			return s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl})
		},
	}
	data := []byte(strings.Repeat("x", 16<<10))
	event := func(i, j int) pass.FlushEvent {
		ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/bench/%d-%d", i, j)), Version: 0}
		return pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: data,
			Records: []prov.Record{
				prov.NewString(ref, prov.AttrType, prov.TypeFile),
				prov.NewString(ref, prov.AttrName, string(ref.Object)),
			}}
	}
	for _, name := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
		mk := archs[name]
		b.Run(name, func(b *testing.B) {
			cl := cloud.New(cloud.Config{Seed: 1})
			st, err := mk(cl)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			before := cl.Usage().TotalOps()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.Put(ctx, st, event(i, 0)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ops := cl.Usage().TotalOps() - before
			b.ReportMetric(float64(ops)/float64(b.N), "cloudops/event")
		})
	}

	// The batched path: one 25-event PutBatch per iteration — the shape a
	// close with 24 unpersisted ancestors produces. cloudops/event is the
	// number to compare against the single-event runs above: the indexed
	// architectures amortize their per-item SimpleDB calls 25:1.
	const batchSize = 25
	for _, name := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
		mk := archs[name]
		b.Run(name+"/batch25", func(b *testing.B) {
			cl := cloud.New(cloud.Config{Seed: 1})
			st, err := mk(cl)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)) * batchSize)
			before := cl.Usage().TotalOps()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := make([]pass.FlushEvent, batchSize)
				for j := range batch {
					batch[j] = event(i, j)
				}
				if err := st.PutBatch(ctx, batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ops := cl.Usage().TotalOps() - before
			b.ReportMetric(float64(ops)/float64(b.N*batchSize), "cloudops/event")
		})
	}
}

// BenchmarkVerifiedRead measures the §4.2 read protocol (GET + item fetch +
// MD5 verification).
func BenchmarkVerifiedRead(b *testing.B) {
	ctx := context.Background()
	cl := cloud.New(cloud.Config{Seed: 1})
	st, err := s3sdb.New(s3sdb.Config{Cloud: cl})
	if err != nil {
		b.Fatal(err)
	}
	data := []byte(strings.Repeat("y", 64<<10))
	ref := prov.Ref{Object: "/bench/read", Version: 0}
	ev := pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: data,
		Records: []prov.Record{prov.NewString(ref, prov.AttrType, prov.TypeFile)}}
	if err := core.Put(ctx, st, ev); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Get(ctx, "/bench/read"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALCommit measures the §4.3 commit path: one logged transaction
// drained end to end.
func BenchmarkWALCommit(b *testing.B) {
	ctx := context.Background()
	cl := cloud.New(cloud.Config{Seed: 1})
	st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl})
	if err != nil {
		b.Fatal(err)
	}
	daemon := s3sdbsqs.NewCommitDaemon(st, nil)
	data := []byte(strings.Repeat("z", 16<<10))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/wal/%d", i)), Version: 0}
		ev := pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: data,
			Records: []prov.Record{prov.NewString(ref, prov.AttrType, prov.TypeFile)}}
		if err := core.Put(ctx, st, ev); err != nil {
			b.Fatal(err)
		}
		if _, err := daemon.RunOnce(ctx, true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations ----------------------------------------------------------------

// BenchmarkAblationNonceCost measures what the nonce adds to the
// consistency record computation (§4.2 argues the nonce is necessary; this
// shows it is also nearly free).
func BenchmarkAblationNonceCost(b *testing.B) {
	data := []byte(strings.Repeat("d", 256<<10))
	b.Run("md5-only", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			sdbprov.ConsistencyMD5(data, "")
		}
	})
	b.Run("md5+nonce", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			sdbprov.ConsistencyMD5(data, "42-abcd")
		}
	})
}

// BenchmarkAblationInlineWAL compares the paper's design — data in a
// temporary S3 object, a pointer on the WAL — against inlining the data
// into 8 KB SQS chunks ("We could split large objects into 8KB chunks and
// store them on the WAL log, but this is quite inefficient"). The total-ops
// metric is the one the paper's pricing model charges for.
func BenchmarkAblationInlineWAL(b *testing.B) {
	ctx := context.Background()
	data := []byte(strings.Repeat("w", 256<<10)) // 256 KB object -> 32 chunks inline

	b.Run("pointer", func(b *testing.B) {
		cl := cloud.New(cloud.Config{Seed: 1})
		st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl})
		if err != nil {
			b.Fatal(err)
		}
		daemon := s3sdbsqs.NewCommitDaemon(st, nil)
		sqsBefore := cl.Usage().Ops(billing.SQS)
		totalBefore := cl.Usage().TotalOps()
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/p/%d", i)), Version: 0}
			ev := pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: data,
				Records: []prov.Record{prov.NewString(ref, prov.AttrType, prov.TypeFile)}}
			if err := core.Put(ctx, st, ev); err != nil {
				b.Fatal(err)
			}
			if _, err := daemon.RunOnce(ctx, true); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(cl.Usage().Ops(billing.SQS)-sqsBefore)/float64(b.N), "sqsops/object")
		b.ReportMetric(float64(cl.Usage().TotalOps()-totalBefore)/float64(b.N), "totalops/object")
	})

	b.Run("inline", func(b *testing.B) {
		cl := cloud.New(cloud.Config{Seed: 1})
		if err := cl.SQS.CreateQueue("inline-wal"); err != nil {
			b.Fatal(err)
		}
		sqsBefore := cl.Usage().Ops(billing.SQS)
		totalBefore := cl.Usage().TotalOps()
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Inline strategy: every 8 KB of the object is its own WAL
			// message, then every message is received and deleted.
			const chunk = 8 << 10
			sent := 0
			for off := 0; off < len(data); off += chunk {
				end := off + chunk
				if end > len(data) {
					end = len(data)
				}
				if _, err := cl.SQS.SendMessage("inline-wal", string(data[off:end])); err != nil {
					b.Fatal(err)
				}
				sent++
			}
			got := 0
			for got < sent {
				msgs, err := cl.SQS.ReceiveMessage("inline-wal", 10, time.Minute)
				if err != nil {
					b.Fatal(err)
				}
				for _, m := range msgs {
					if err := cl.SQS.DeleteMessage("inline-wal", m.ReceiptHandle); err != nil {
						b.Fatal(err)
					}
					got++
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(cl.Usage().Ops(billing.SQS)-sqsBefore)/float64(b.N), "sqsops/object")
		b.ReportMetric(float64(cl.Usage().TotalOps()-totalBefore)/float64(b.N), "totalops/object")
	})
}

// BenchmarkProvenanceEncodings compares the three wire encodings.
func BenchmarkProvenanceEncodings(b *testing.B) {
	subject := prov.Ref{Object: "/f", Version: 3}
	var records []prov.Record
	for i := 0; i < 24; i++ {
		records = append(records, prov.NewInput(subject, prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/dep%d", i))}))
	}
	records = append(records, prov.NewString(subject, prov.AttrEnv, strings.Repeat("e", 512)))

	b.Run("s3-metadata", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			meta := prov.EncodeS3Metadata(records)
			if _, err := prov.DecodeS3Metadata(subject, meta); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sdb-attrs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			attrs := prov.EncodeSDBAttrs(records)
			if _, err := prov.DecodeSDBAttrs(subject, attrs, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wal-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chunks, err := prov.ChunkJSON(records, 8<<10)
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range chunks {
				if _, err := prov.UnmarshalJSONRecords(c); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
