package passcloud

import (
	"fmt"
	"testing"

	"passcloud/internal/replay"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// TestReplayCleanWorkloads is the reproducibility half of the replay
// oracle: every seeded workload, replayed on a fresh sandbox tenant, must
// re-derive byte-identical content for every current file version — on
// all three architectures, single-store and sharded. A divergence here
// means the capture path recorded provenance that does not explain the
// stored bytes.
func TestReplayCleanWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cross-architecture replay")
	}
	const seed, scale = 42, 0.01
	for _, arch := range allArchitectures {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", arch, shards), func(t *testing.T) {
				c, err := New(Options{Architecture: arch, Seed: seed, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				if err := workload.Run(ctx, c.sys, sim.NewRNG(seed), workload.NewCombined(scale)); err != nil {
					t.Fatal(err)
				}
				if err := c.Sync(ctx); err != nil {
					t.Fatal(err)
				}
				rep, err := c.ReplayAll(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Compared == 0 {
					t.Fatal("replay compared nothing; extraction is broken")
				}
				if rep.Subjects == 0 || rep.Processes == 0 || rep.Sources == 0 {
					t.Fatalf("implausible replay coverage: %+v", rep)
				}
				// Seeded workloads leave every file at its only version, so
				// every extracted file — derived or ingested — must be
				// diffed; anything less means the audit silently skipped
				// subjects.
				if rep.Compared != rep.Subjects+rep.Sources {
					t.Fatalf("compared %d of %d file versions", rep.Compared, rep.Subjects+rep.Sources)
				}
				if !rep.Clean() {
					for i, d := range rep.Divergences {
						if i >= 10 {
							t.Errorf("... and %d more", len(rep.Divergences)-10)
							break
						}
						t.Errorf("divergence: %s", d)
					}
					t.Fatalf("replay of a faithful capture diverged (%d findings)", len(rep.Divergences))
				}
				if rep.Usage.USD <= 0 {
					t.Fatal("replay sandbox metered no cost")
				}
			})
		}
	}
}

// TestReplaySingleTarget replays one object's lineage only and checks the
// extraction stays scoped to its ancestry.
func TestReplaySingleTarget(t *testing.T) {
	c, err := New(Options{Architecture: S3SimpleDB, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Run(ctx, c.sys, sim.NewRNG(7), workload.DefaultProvChallenge(0.01)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	full, err := c.ReplayAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	one, err := c.Replay(ctx, "/fmri/run0000/atlas.img")
	if err != nil {
		t.Fatal(err)
	}
	if !one.Clean() {
		t.Fatalf("single-target replay diverged: %v", one.Divergences)
	}
	// The target's ancestry includes other current versions (warps,
	// resliced images); they are compared too, but the scope must stay a
	// proper subset of the full audit.
	if one.Compared == 0 || one.Compared >= full.Compared {
		t.Fatalf("single-target replay compared %d versions, full replay %d; want a proper ancestry subset", one.Compared, full.Compared)
	}
	if one.Processes == 0 || one.Processes >= full.Processes {
		t.Fatalf("single-target replay re-executed %d processes, full replay %d; want a proper ancestry subset", one.Processes, full.Processes)
	}
}

// TestReplayEnvDrift replays records captured under one kernel in an
// environment configured with another: every process version must report
// env-drift — and nothing else, since the record-derived content is
// unaffected by where it is re-derived.
func TestReplayEnvDrift(t *testing.T) {
	c, err := New(Options{Architecture: S3SimpleDB, Seed: 3, Kernel: "2.6.23.17-pass"})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Run(ctx, c.sys, sim.NewRNG(3), workload.DefaultProvChallenge(0.01)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	q, err := c.querier()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := c.store.Get(ctx, "/fmri/run0000/atlas.img")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replay.Replay(ctx, replay.Config{
		Source: q,
		Fetch:  c.store.Get,
		Runner: workload.Tools{},
		Kernel: "6.1.0-generic",
	}, obj.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) == 0 {
		t.Fatal("kernel drift went undetected")
	}
	drifted := 0
	for _, d := range rep.Divergences {
		if d.Kind != replay.KindEnvDrift {
			t.Fatalf("unexpected %s divergence under pure kernel drift: %s", d.Kind, d)
		}
		drifted++
	}
	if drifted != rep.Processes {
		t.Fatalf("%d env-drift findings for %d re-executed processes; drift must be reported once per process version", drifted, rep.Processes)
	}
}

// TestReplayUnrunnableTool checks that a writer outside the runner's
// registry is reported as unrunnable-tool rather than silently skipped or
// falsely diffed.
func TestReplayUnrunnableTool(t *testing.T) {
	c, err := New(Options{Architecture: S3Only, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(ctx, "/in/data.txt", []byte("opaque input")); err != nil {
		t.Fatal(err)
	}
	p := c.Exec(nil, ProcessSpec{Name: "mystery", Argv: []string{"mystery", "/in/data.txt"}})
	if err := p.Read("/in/data.txt"); err != nil {
		t.Fatal(err)
	}
	if err := p.Write("/out/result.bin", []byte("bytes no registry derives")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(ctx, "/out/result.bin"); err != nil {
		t.Fatal(err)
	}
	p.Exit()
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Replay(ctx, "/out/result.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 1 {
		t.Fatalf("got %d divergences, want exactly 1: %v", len(rep.Divergences), rep.Divergences)
	}
	d := rep.Divergences[0]
	if d.Kind != replay.KindUnrunnableTool.String() || d.Subject.Object != "/out/result.bin" {
		t.Fatalf("got %s, want unrunnable-tool on /out/result.bin", d)
	}
}

// TestReplayWriteDerived closes the public-API loop: a process writing
// through WriteDerived produces content that Replay re-derives cleanly.
func TestReplayWriteDerived(t *testing.T) {
	c, err := New(Options{Architecture: S3SimpleDBSQS, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(ctx, "/data/anatomy.img", []byte("scanned anatomy volume")); err != nil {
		t.Fatal(err)
	}
	p := c.Exec(nil, ProcessSpec{
		Name: "align_warp",
		Argv: []string{"align_warp", "/data/anatomy.img", "-m", "12"},
		Env:  "PATH=/usr/bin",
	})
	if err := p.Read("/data/anatomy.img"); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteDerived("/out/warp.warp"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(ctx, "/out/warp.warp"); err != nil {
		t.Fatal(err)
	}
	p.Exit()
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Replay(ctx, "/out/warp.warp")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("WriteDerived content diverged on replay: %v", rep.Divergences)
	}
	if rep.Compared == 0 || rep.Subjects != 1 || rep.Sources != 1 {
		t.Fatalf("unexpected coverage: %+v", rep)
	}
}
