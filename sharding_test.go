package passcloud

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
)

// driveShardWorkload runs the same small scenario against any client.
func driveShardWorkload(t *testing.T, ctx context.Context, c *Client) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		must(c.Ingest(ctx, fmt.Sprintf("/data/set%d", i), []byte(fmt.Sprintf("payload-%d", i))))
	}
	p := c.Exec(nil, ProcessSpec{Name: "blast", Argv: []string{"blast"}})
	must(p.Read("/data/set0"))
	must(p.Read("/data/set3"))
	must(p.Write("/out/hits", []byte("hits")))
	must(p.Close(ctx, "/out/hits"))
	q := c.Exec(nil, ProcessSpec{Name: "summarize"})
	must(q.Read("/out/hits"))
	must(q.Write("/out/summary", []byte("sum")))
	must(q.Close(ctx, "/out/summary"))
	p.Exit()
	q.Exit()
	must(c.Sync(ctx))
	c.Settle()
}

// searchRefs canonicalizes one Search's result refs.
func searchRefs(t *testing.T, ctx context.Context, c *Client, spec QuerySpec) []string {
	t.Helper()
	res, err := c.Search(ctx, spec)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	var out []string
	for _, e := range res.Entries {
		out = append(out, e.Ref.String())
	}
	sort.Strings(out)
	return out
}

// TestShardedClientMatchesUnsharded: the public surface must answer
// identically with Shards set — sharding is a deployment knob, not an API
// change.
func TestShardedClientMatchesUnsharded(t *testing.T) {
	ctx := context.Background()
	for _, arch := range []Architecture{S3Only, S3SimpleDB, S3SimpleDBSQS} {
		t.Run(arch.String(), func(t *testing.T) {
			flat, err := New(Options{Architecture: arch, Seed: 41})
			if err != nil {
				t.Fatal(err)
			}
			shardedC, err := New(Options{Architecture: arch, Seed: 41, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			driveShardWorkload(t, ctx, flat)
			driveShardWorkload(t, ctx, shardedC)

			specs := []QuerySpec{
				{},
				{Tool: "blast", Type: "file", RefsOnly: true},
				{Tool: "blast", Type: "file", Direction: TraverseDescendants, RefsOnly: true},
				{RefPrefix: "/data/", RefsOnly: true},
				{Refs: []Ref{{Object: "/out/summary", Version: 1}}, Direction: TraverseAncestors, RefsOnly: true},
			}
			for i, spec := range specs {
				want := searchRefs(t, ctx, flat, spec)
				got := searchRefs(t, ctx, shardedC, spec)
				if fmt.Sprint(want) != fmt.Sprint(got) {
					t.Errorf("spec %d: unsharded %v, sharded %v", i, want, got)
				}
			}

			// Reads, lineage guards and deletes route transparently.
			obj, err := shardedC.Get(ctx, "/out/hits")
			if err != nil || string(obj.Data) != "hits" || len(obj.Records) == 0 {
				t.Fatalf("sharded Get: %v %q (%d records)", err, obj.Data, len(obj.Records))
			}
			var hasDeps *ErrHasDependents
			if err := shardedC.SafeDelete(ctx, "/data/set0"); !errors.As(err, &hasDeps) {
				t.Fatalf("SafeDelete of consumed input: %v, want ErrHasDependents", err)
			}
			if err := shardedC.SafeDelete(ctx, "/data/set7"); err != nil {
				t.Fatalf("SafeDelete of unused input: %v", err)
			}

			// Explain works through the router and predicts a real plan.
			plan, err := shardedC.Explain(QuerySpec{RefPrefix: "/data/", RefsOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			if plan.Strategy == "" || len(plan.Steps) == 0 {
				t.Fatalf("empty sharded plan: %+v", plan)
			}
		})
	}
}

// TestTenantIsolation: two tenants of one region share nothing — neither
// data nor billing.
func TestTenantIsolation(t *testing.T) {
	ctx := context.Background()
	region, err := NewRegion(Options{Architecture: S3SimpleDB, Seed: 5, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := region.NewTenantClient("alice", "")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := region.NewTenantClient("bob", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Ingest(ctx, "/secret/a", []byte("alice-data")); err != nil {
		t.Fatal(err)
	}
	if err := alice.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	aliceBill := alice.TenantUsage()
	if aliceBill.S3Ops == 0 {
		t.Fatal("alice's writes were not billed to her tenant keys")
	}

	if _, err := bob.Get(ctx, "/secret/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tenant bob can read tenant alice's object: %v", err)
	}
	res, err := bob.Search(ctx, QuerySpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 0 {
		t.Fatalf("tenant bob sees %d of alice's provenance entries", len(res.Entries))
	}

	// Billing isolation: bob's reads bill bob's keys (AWS charges reads),
	// never alice's; the region bill covers both.
	if got := alice.TenantUsage(); got != aliceBill {
		t.Fatalf("bob's activity changed alice's bill: %+v -> %+v", aliceBill, got)
	}
	if bob.TenantUsage().S3Ops+bob.TenantUsage().SimpleDBOps == 0 {
		t.Fatal("bob's reads were not billed to his tenant keys")
	}
	if region.Usage().S3Ops < aliceBill.S3Ops+bob.TenantUsage().S3Ops {
		t.Fatal("region bill misses tenant usage")
	}
}

// TestShardedRegionSharedClients: two clients of one tenant see each
// other's provenance, exactly like clients of an unsharded region.
func TestShardedRegionSharedClients(t *testing.T) {
	ctx := context.Background()
	region, err := NewRegion(Options{Architecture: S3SimpleDB, Seed: 6, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	producer, err := region.NewClient("")
	if err != nil {
		t.Fatal(err)
	}
	consumer, err := region.NewClient("")
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Ingest(ctx, "/shared/dataset", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := producer.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	region.Settle()
	obj, err := consumer.Fetch(ctx, "/shared/dataset")
	if err != nil {
		t.Fatalf("consumer cannot fetch shared object: %v", err)
	}
	if string(obj.Data) != "payload" {
		t.Fatalf("fetched %q", obj.Data)
	}
}
