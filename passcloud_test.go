package passcloud

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// ctx is the shared background context for test cloud calls.
var ctx = context.Background()

// allArchitectures enumerates the paper's three designs for cross-cutting
// tests.
var allArchitectures = []Architecture{S3Only, S3SimpleDB, S3SimpleDBSQS}

// runPipeline drives the canonical scenario from the paper's introduction:
// a downloaded data set, an analysis tool, a derived result, and a second
// stage deriving from the first.
func runPipeline(t *testing.T, c *Client) {
	t.Helper()
	if err := c.Ingest(ctx, "/census/data.csv", []byte("census-2000-data")); err != nil {
		t.Fatal(err)
	}
	analyze := c.Exec(nil, ProcessSpec{Name: "analyze", Argv: []string{"analyze", "--trend"}})
	if err := analyze.Read("/census/data.csv"); err != nil {
		t.Fatal(err)
	}
	if err := analyze.Write("/results/trends.dat", []byte("trend-results")); err != nil {
		t.Fatal(err)
	}
	if err := analyze.Close(ctx, "/results/trends.dat"); err != nil {
		t.Fatal(err)
	}
	analyze.Exit()

	plot := c.Exec(nil, ProcessSpec{Name: "plot"})
	if err := plot.Read("/results/trends.dat"); err != nil {
		t.Fatal(err)
	}
	if err := plot.Write("/results/trends.png", []byte("png-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := plot.Close(ctx, "/results/trends.png"); err != nil {
		t.Fatal(err)
	}
	plot.Exit()

	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	c.Settle()
}

func TestPipelineAllArchitectures(t *testing.T) {
	for _, arch := range allArchitectures {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			c, err := New(Options{Architecture: arch, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			runPipeline(t, c)

			obj, err := c.Get(ctx, "/results/trends.dat")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(obj.Data, []byte("trend-results")) {
				t.Fatalf("data = %q", obj.Data)
			}
			// The result's provenance leads to the analyze process.
			var inputs []Ref
			for _, r := range obj.Records {
				if r.IsInput {
					inputs = append(inputs, r.InputRef)
				}
			}
			if len(inputs) != 1 || inputs[0].Object != "proc/1/analyze" {
				t.Fatalf("inputs = %v", inputs)
			}

			// Q.2: outputs of analyze.
			outputs, err := c.OutputsOf(ctx, "analyze")
			if err != nil {
				t.Fatal(err)
			}
			if len(outputs) != 1 || outputs[0].Object != "/results/trends.dat" {
				t.Fatalf("OutputsOf = %v", outputs)
			}

			// Q.3: everything derived from analyze's outputs.
			desc, err := c.DescendantsOfOutputs(ctx, "analyze")
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, d := range desc {
				if d.Object == "/results/trends.png" {
					found = true
				}
			}
			if !found {
				t.Fatalf("descendants %v missing the plot", desc)
			}

			// Full ancestry of the plot reaches the census data.
			png, err := c.Get(ctx, "/results/trends.png")
			if err != nil {
				t.Fatal(err)
			}
			anc, err := c.Ancestors(ctx, png.Ref)
			if err != nil {
				t.Fatal(err)
			}
			reachedCensus := false
			for _, a := range anc {
				if a.Object == "/census/data.csv" {
					reachedCensus = true
				}
			}
			if !reachedCensus {
				t.Fatalf("ancestry %v does not reach the source data", anc)
			}
		})
	}
}

func TestArchitecturesAgreeOnAnswers(t *testing.T) {
	type answers struct {
		outputs  []Ref
		desc     []Ref
		subjects int
	}
	var got []answers
	for _, arch := range allArchitectures {
		c, err := New(Options{Architecture: arch, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		runPipeline(t, c)
		outputs, err := c.OutputsOf(ctx, "analyze")
		if err != nil {
			t.Fatal(err)
		}
		desc, err := c.DescendantsOfOutputs(ctx, "analyze")
		if err != nil {
			t.Fatal(err)
		}
		all, err := c.AllProvenance(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, answers{outputs: outputs, desc: desc, subjects: len(all)})
	}
	for i := 1; i < len(got); i++ {
		if !reflect.DeepEqual(got[i].outputs, got[0].outputs) {
			t.Errorf("outputs differ between architectures: %v vs %v", got[i].outputs, got[0].outputs)
		}
		if len(got[i].desc) != len(got[0].desc) {
			t.Errorf("descendant counts differ: %d vs %d", len(got[i].desc), len(got[0].desc))
		}
		if got[i].subjects != got[0].subjects {
			t.Errorf("subject counts differ: %d vs %d", got[i].subjects, got[0].subjects)
		}
	}
}

func TestPropertiesMatchTable1(t *testing.T) {
	want := map[Architecture]Properties{
		S3Only:        {Atomicity: true, Consistency: true, CausalOrdering: true, EfficientQuery: false},
		S3SimpleDB:    {Atomicity: false, Consistency: true, CausalOrdering: true, EfficientQuery: true},
		S3SimpleDBSQS: {Atomicity: true, Consistency: true, CausalOrdering: true, EfficientQuery: true},
	}
	for arch, w := range want {
		c, err := New(Options{Architecture: arch})
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Properties(); got != w {
			t.Errorf("%v properties = %+v, want %+v", arch, got, w)
		}
	}
}

func TestEventualConsistencyVisibleThroughAPI(t *testing.T) {
	c, err := New(Options{
		Architecture:     S3Only,
		Seed:             3,
		ConsistencyDelay: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(ctx, "/d", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Without settling, some reads may miss the fresh object.
	missed := false
	for i := 0; i < 100; i++ {
		if _, err := c.Get(ctx, "/d"); errors.Is(err, ErrNotFound) {
			missed = true
			break
		}
	}
	if !missed {
		t.Log("no stale read observed (possible but unlikely); continuing")
	}
	c.Settle()
	if _, err := c.Get(ctx, "/d"); err != nil {
		t.Fatalf("after Settle: %v", err)
	}
}

func TestUsageAccounting(t *testing.T) {
	c, err := New(Options{Architecture: S3SimpleDBSQS, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	runPipeline(t, c)
	u := c.Usage()
	if u.S3Ops == 0 || u.SimpleDBOps == 0 || u.SQSOps == 0 {
		t.Fatalf("usage incomplete: %+v", u)
	}
	if u.S3Stored == 0 || u.TransferredIn == 0 {
		t.Fatalf("storage/transfer accounting missing: %+v", u)
	}
	if u.USD <= 0 {
		t.Fatalf("USD = %v", u.USD)
	}
}

func TestProvenanceByVersion(t *testing.T) {
	c, err := New(Options{Architecture: S3SimpleDB, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	w := c.Exec(nil, ProcessSpec{Name: "writer"})
	for v := 0; v < 3; v++ {
		if err := w.Write("/f", []byte(fmt.Sprintf("v%d", v))); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(ctx, "/f"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// Every version's provenance is retrievable.
	for v := 0; v < 3; v++ {
		records, err := c.Provenance(ctx, Ref{Object: "/f", Version: v})
		if err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		if len(records) == 0 {
			t.Fatalf("version %d has no records", v)
		}
	}
	if _, err := c.Provenance(ctx, Ref{Object: "/f", Version: 9}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version: %v", err)
	}
}

func TestAppendAndPipe(t *testing.T) {
	c, err := New(Options{Architecture: S3SimpleDBSQS, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	gen := c.Exec(nil, ProcessSpec{Name: "gen"})
	sink := c.Exec(nil, ProcessSpec{Name: "sink"})
	if err := gen.PipeTo(sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Append("/log", []byte("line1\n")); err != nil {
		t.Fatal(err)
	}
	if err := sink.Append("/log", []byte("line2\n")); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(ctx, "/log"); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	obj, err := c.Get(ctx, "/log")
	if err != nil || string(obj.Data) != "line1\nline2\n" {
		t.Fatalf("log = %v, %v", obj, err)
	}
	// The log's ancestry includes gen, through the pipe.
	anc, err := c.Ancestors(ctx, obj.Ref)
	if err != nil {
		t.Fatal(err)
	}
	foundGen := false
	for _, a := range anc {
		if a.Object == "proc/1/gen" {
			foundGen = true
		}
	}
	if !foundGen {
		t.Fatalf("ancestors %v missing pipe source", anc)
	}
}

func TestUnknownArchitecture(t *testing.T) {
	if _, err := New(Options{Architecture: Architecture(99)}); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	if Architecture(99).String() == "" {
		t.Fatal("empty name for unknown architecture")
	}
}

func TestDeterminism(t *testing.T) {
	usage := func() UsageSummary {
		c, err := New(Options{Architecture: S3SimpleDBSQS, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		runPipeline(t, c)
		return c.Usage()
	}
	a, b := usage(), usage()
	if a != b {
		t.Fatalf("same seed produced different usage:\n%+v\n%+v", a, b)
	}
}

// TestQueryCacheThroughPublicAPI: repeated queries on an unchanged
// repository cost zero cloud ops on every architecture; a write in between
// invalidates; DisableQueryCache restores pay-per-query.
func TestQueryCacheThroughPublicAPI(t *testing.T) {
	for _, arch := range allArchitectures {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			c, err := New(Options{Architecture: arch, Seed: 21})
			if err != nil {
				t.Fatal(err)
			}
			runPipeline(t, c)

			// Cold round, then the repeat round must be free.
			queries := func() (int, int) {
				outputs, err := c.OutputsOf(ctx, "analyze")
				if err != nil {
					t.Fatal(err)
				}
				desc, err := c.DescendantsOfOutputs(ctx, "analyze")
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.AllProvenance(ctx); err != nil {
					t.Fatal(err)
				}
				if _, err := c.Ancestors(ctx, Ref{Object: "/results/trends.png", Version: 0}); err != nil {
					t.Fatal(err)
				}
				return len(outputs), len(desc)
			}
			outputs, desc := queries()
			if outputs != 1 || desc < 1 {
				t.Fatalf("cold queries: outputs = %d, descendants = %d", outputs, desc)
			}
			before := c.Usage()
			queries()
			after := c.Usage()
			if ops := (after.S3Ops + after.SimpleDBOps) - (before.S3Ops + before.SimpleDBOps); ops != 0 {
				t.Fatalf("repeat query round cost %d cloud ops, want 0", ops)
			}

			// A new derivation invalidates: the next query sees it.
			extra := c.Exec(nil, ProcessSpec{Name: "analyze", Argv: []string{"analyze", "--again"}})
			if err := extra.Read("/census/data.csv"); err != nil {
				t.Fatal(err)
			}
			if err := extra.Write("/results/extra.dat", []byte("more")); err != nil {
				t.Fatal(err)
			}
			if err := extra.Close(ctx, "/results/extra.dat"); err != nil {
				t.Fatal(err)
			}
			extra.Exit()
			if err := c.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			c.Settle()
			got, err := c.OutputsOf(ctx, "analyze")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 {
				t.Fatalf("OutputsOf after new write = %d, want 2 (stale cache)", len(got))
			}
		})
	}
}

func TestDisableQueryCacheRestoresPaperCosts(t *testing.T) {
	c, err := New(Options{Architecture: S3Only, Seed: 22, DisableQueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	runPipeline(t, c)
	if _, err := c.OutputsOf(ctx, "analyze"); err != nil {
		t.Fatal(err)
	}
	before := c.Usage().S3Ops
	if _, err := c.OutputsOf(ctx, "analyze"); err != nil {
		t.Fatal(err)
	}
	if ops := c.Usage().S3Ops - before; ops == 0 {
		t.Fatal("uncached repeat query cost 0 ops; knob did not disable the cache")
	}
}
