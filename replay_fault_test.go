package passcloud

// The randomized replay-divergence oracle: capture bugs injected through
// raw cloud access — below the store APIs, the way a buggy capture layer
// would misrecord — must each surface as a replay divergence on exactly
// the affected subjects, and a faithful capture must replay with zero
// findings. Four bug shapes per run, disjoint victims:
//
//   - mutate-argv rewrites a recorded process argument vector, so the
//     writer's re-execution derives different bytes (digest-mismatch on
//     the file it wrote);
//   - drop-input deletes one recorded input edge from a multi-input file,
//     so the rebuild misses that writer's chunk (digest-mismatch);
//   - swap-pin repoints an input edge at a different existing process
//     version, so the rebuild runs the wrong recorded call
//     (digest-mismatch);
//   - bogus-pin repoints an input edge at a version that was never
//     recorded, so the rebuild cannot resolve the writer (missing-input).
//
// Victims are drawn by a seeded RNG; the seed matrix follows the
// SWEEP_SEEDS convention (the name carries "Fault" so CI's sweep job runs
// it across its full seed set).

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/sdb"
	"passcloud/internal/core"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// oracleSeeds mirrors the sweep seed convention: the fixed local set,
// overridable via SWEEP_SEEDS so any logged failure replays verbatim.
func oracleSeeds(t *testing.T) []int64 {
	if env := os.Getenv("SWEEP_SEEDS"); env != "" {
		var out []int64
		for _, part := range strings.Split(env, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				t.Fatalf("SWEEP_SEEDS: %v", err)
			}
			out = append(out, n)
		}
		return out
	}
	return []int64{1, 7}
}

func TestReplayFaultOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cross-architecture oracle")
	}
	for _, arch := range allArchitectures {
		for _, shards := range []int{1, 4} {
			for _, seed := range oracleSeeds(t) {
				t.Run(fmt.Sprintf("%s/shards=%d/seed%d", arch, shards, seed), func(t *testing.T) {
					runReplayFaultOracle(t, arch, shards, seed)
				})
			}
		}
	}
}

func runReplayFaultOracle(t *testing.T, arch Architecture, shards int, seed int64) {
	// The raw injections below bypass the store, so its query cache would
	// otherwise serve the pre-injection snapshot.
	c, err := New(Options{Architecture: arch, Seed: seed, Shards: shards, DisableQueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Run(ctx, c.sys, sim.NewRNG(seed), workload.NewCombined(0.01)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Zero false positives: the untampered capture must replay clean.
	pre, err := c.ReplayAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Clean() {
		t.Fatalf("faithful capture diverged before injection: %v", pre.Divergences)
	}
	if pre.Compared != pre.Subjects+pre.Sources {
		t.Fatalf("pre-injection replay compared %d of %d file versions", pre.Compared, pre.Subjects+pre.Sources)
	}

	st := loadLineageStructure(t, c)
	if len(st.ccProcs) < 4 {
		t.Fatalf("workload recorded %d cc processes, oracle needs 4 disjoint victims", len(st.ccProcs))
	}
	if len(st.outFiles) == 0 {
		t.Fatal("workload recorded no multi-input result files")
	}

	rng := sim.NewRNG(seed)
	perm := rng.Perm(len(st.ccProcs))
	mutated, swapped, bogus, alt := st.ccProcs[perm[0]], st.ccProcs[perm[1]], st.ccProcs[perm[2]], st.ccProcs[perm[3]]
	outFile := st.outFiles[rng.Intn(len(st.outFiles))]
	// Drop a middle edge so the file keeps inputs on both sides and the
	// subgraph stays connected through the surviving pins.
	dropped := outFile.inputs[1+rng.Intn(len(outFile.inputs)-2)]

	inj := newInjector(t, c)
	inj.mutateString(mutated, prov.AttrArgv, st.argv[mutated]+" --drift")
	inj.dropInput(outFile.ref, dropped)
	inj.swapInput(st.output[swapped], swapped, alt)
	inj.swapInput(st.output[bogus], bogus, prov.Ref{Object: bogus.Object, Version: 999})
	c.Settle()

	post, err := c.ReplayAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := map[Ref]string{
		toPublicRef(st.output[mutated]): "digest-mismatch",
		toPublicRef(outFile.ref):        "digest-mismatch",
		toPublicRef(st.output[swapped]): "digest-mismatch",
		toPublicRef(st.output[bogus]):   "missing-input",
	}
	got := map[Ref]string{}
	for _, d := range post.Divergences {
		if prior, dup := got[d.Subject]; dup {
			t.Errorf("subject %s flagged twice: %s and %s", d.Subject, prior, d.Kind)
		}
		got[d.Subject] = d.Kind
	}
	for subject, kind := range want {
		if got[subject] != kind {
			t.Errorf("injected bug at %s: want %s, got %q", subject, kind, got[subject])
		}
	}
	for subject, kind := range got {
		if _, expected := want[subject]; !expected {
			t.Errorf("false positive: %s flagged %s with no injected bug", subject, kind)
		}
	}
	if t.Failed() {
		t.Fatalf("oracle attribution failed; full report: %v", post.Divergences)
	}
}

// lineageStructure indexes the recorded graph for victim selection.
type lineageStructure struct {
	// ccProcs lists recorded cc process versions in canonical order; each
	// wrote exactly one object file.
	ccProcs []prov.Ref
	// output maps a process version to the current file version listing it
	// as an input.
	output map[prov.Ref]prov.Ref
	// argv maps a process version to its recorded argument vector.
	argv map[prov.Ref]string
	// outFiles lists current file versions with at least three recorded
	// writer pins (the coalesced blast result appends).
	outFiles []multiInputFile
}

type multiInputFile struct {
	ref    prov.Ref
	inputs []prov.Ref
}

func loadLineageStructure(t *testing.T, c *Client) *lineageStructure {
	q, err := c.querier()
	if err != nil {
		t.Fatal(err)
	}
	type subjectInfo struct {
		typ, name, argv string
		inputs          []prov.Ref
		seenInput       map[prov.Ref]bool
	}
	subjects := map[prov.Ref]*subjectInfo{}
	for entry, qerr := range q.Query(ctx, prov.Query{Projection: prov.ProjectFull}) {
		if qerr != nil {
			t.Fatal(qerr)
		}
		info := subjects[entry.Ref]
		if info == nil {
			info = &subjectInfo{seenInput: map[prov.Ref]bool{}}
			subjects[entry.Ref] = info
		}
		for _, r := range entry.Records {
			switch {
			case r.Attr == prov.AttrType:
				info.typ = r.Value.Str
			case r.Attr == prov.AttrName:
				info.name = r.Value.Str
			case r.Attr == prov.AttrArgv:
				info.argv = r.Value.Str
			case r.Attr == prov.AttrInput && r.Value.Kind == prov.KindRef:
				if !info.seenInput[r.Value.Ref] {
					info.seenInput[r.Value.Ref] = true
					info.inputs = append(info.inputs, r.Value.Ref)
				}
			}
		}
	}
	st := &lineageStructure{output: map[prov.Ref]prov.Ref{}, argv: map[prov.Ref]string{}}
	for ref, info := range subjects {
		if info.typ != prov.TypeFile {
			continue
		}
		sort.Slice(info.inputs, func(i, j int) bool {
			a, b := info.inputs[i], info.inputs[j]
			if a.Object != b.Object {
				return a.Object < b.Object
			}
			return a.Version < b.Version
		})
		for _, in := range info.inputs {
			if proc := subjects[in]; proc != nil && proc.typ == prov.TypeProcess {
				st.output[in] = ref
			}
		}
		if len(info.inputs) >= 3 {
			st.outFiles = append(st.outFiles, multiInputFile{ref: ref, inputs: info.inputs})
		}
	}
	for ref, info := range subjects {
		if info.typ != prov.TypeProcess || info.name != "cc" {
			continue
		}
		if _, ok := st.output[ref]; !ok {
			continue // never pinned by a persisted file
		}
		st.ccProcs = append(st.ccProcs, ref)
		st.argv[ref] = info.argv
	}
	sort.Slice(st.ccProcs, func(i, j int) bool {
		a, b := st.ccProcs[i], st.ccProcs[j]
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Version < b.Version
	})
	sort.Slice(st.outFiles, func(i, j int) bool { return st.outFiles[i].ref.Object < st.outFiles[j].ref.Object })
	return st
}

// injector applies one capture bug through raw cloud access, below the
// store APIs. Every method fails the test if it cannot find the recorded
// state to tamper with — a vacuously clean oracle proves nothing.
type injector interface {
	// mutateString replaces subject's attr string record with newVal.
	mutateString(subject prov.Ref, attr, newVal string)
	// dropInput deletes subject's recorded input edge.
	dropInput(subject, input prov.Ref)
	// swapInput repoints subject's input edge from oldIn to newIn.
	swapInput(subject, oldIn, newIn prov.Ref)
}

func newInjector(t *testing.T, c *Client) injector {
	clouds := c.shardClouds
	if len(clouds) == 0 {
		clouds = []*cloud.Cloud{c.cloud}
	}
	if c.opts.Architecture == S3Only {
		return &s3RawInjector{t: t, clouds: clouds, bucket: c.bucketName()}
	}
	inj := &sdbRawInjector{t: t, clouds: clouds}
	for _, st := range c.shardStores {
		layered, ok := st.(interface{ Layer() *sdbprov.Layer })
		if !ok {
			t.Fatalf("store %T exposes no SimpleDB layer", st)
		}
		inj.domains = append(inj.domains, layered.Layer().Domain())
	}
	return inj
}

// sdbRawInjector tampers with provenance items in the SimpleDB-backed
// architectures. Items live on the shard of the carrier file that flushed
// them, so each mutation scans every shard domain.
type sdbRawInjector struct {
	t       *testing.T
	clouds  []*cloud.Cloud
	domains []string
}

// forEachCopy runs fn on every shard holding the subject's item.
func (in *sdbRawInjector) forEachCopy(subject prov.Ref, fn func(shard int, domain, item string, attrs []sdb.Attr)) {
	in.t.Helper()
	item := prov.EncodeItemName(subject)
	found := 0
	for i, cl := range in.clouds {
		attrs, ok, err := cl.SDB.GetAttributes(in.domains[i], item)
		if err != nil {
			in.t.Fatal(err)
		}
		if !ok {
			continue
		}
		found++
		fn(i, in.domains[i], item, attrs)
	}
	if found == 0 {
		in.t.Fatalf("no shard holds an item for %s; cannot inject", subject)
	}
}

func (in *sdbRawInjector) mutateString(subject prov.Ref, attr, newVal string) {
	in.t.Helper()
	in.forEachCopy(subject, func(shard int, domain, item string, _ []sdb.Attr) {
		err := in.clouds[shard].SDB.PutAttributes(domain, item, []sdb.ReplaceableAttr{
			{Name: attr, Value: core.EscapeLiteral(newVal), Replace: true},
		})
		if err != nil {
			in.t.Fatal(err)
		}
	})
}

func (in *sdbRawInjector) dropInput(subject, input prov.Ref) {
	in.t.Helper()
	dropped := 0
	in.forEachCopy(subject, func(shard int, domain, item string, attrs []sdb.Attr) {
		for _, a := range attrs {
			if a.Name == prov.AttrInput && a.Value == input.String() {
				err := in.clouds[shard].SDB.DeleteAttributes(domain, item, []sdb.Attr{a})
				if err != nil {
					in.t.Fatal(err)
				}
				dropped++
			}
		}
	})
	if dropped == 0 {
		in.t.Fatalf("no stored input edge %s -> %s to drop", subject, input)
	}
}

func (in *sdbRawInjector) swapInput(subject, oldIn, newIn prov.Ref) {
	in.t.Helper()
	in.dropInput(subject, oldIn)
	in.forEachCopy(subject, func(shard int, domain, item string, _ []sdb.Attr) {
		err := in.clouds[shard].SDB.PutAttributes(domain, item, []sdb.ReplaceableAttr{
			{Name: prov.AttrInput, Value: newIn.String()},
		})
		if err != nil {
			in.t.Fatal(err)
		}
	})
}

// s3RawInjector tampers with the metadata-encoded provenance of the
// S3-only architecture: a file's own records are p-* entries on its data
// object, a process's records are q-* entries riding its carrier file
// (spilling to a bundle object when the metadata budget runs out).
type s3RawInjector struct {
	t      *testing.T
	clouds []*cloud.Cloud
	bucket string
}

const (
	s3DataPrefix  = "data"
	s3FieldSep    = "\x1f"
	s3BundleEntry = "x-over"
)

// rewriteEverywhere runs edit over every data object's metadata (and any
// spill bundle), re-putting carriers the edit changed. edit returns the
// number of entries it rewrote.
func (in *s3RawInjector) rewriteEverywhere(edit func(meta map[string]string) int, editBundle func(recs []prov.Record) int) {
	in.t.Helper()
	applied := 0
	for _, cl := range in.clouds {
		infos, err := cl.S3.ListAll(in.bucket, s3DataPrefix)
		if err != nil {
			in.t.Fatal(err)
		}
		for _, info := range infos {
			obj, err := cl.S3.Get(in.bucket, info.Key)
			if err != nil {
				in.t.Fatal(err)
			}
			if n := edit(obj.Metadata); n > 0 {
				applied += n
				if err := cl.S3.Put(in.bucket, obj.Key, obj.Body, obj.Metadata); err != nil {
					in.t.Fatal(err)
				}
			}
			bkey, ok := obj.Metadata[s3BundleEntry]
			if !ok || editBundle == nil {
				continue
			}
			bundle, err := cl.S3.Get(in.bucket, bkey)
			if err != nil {
				in.t.Fatal(err)
			}
			recs, err := prov.UnmarshalJSONRecords(bundle.Body)
			if err != nil {
				in.t.Fatal(err)
			}
			if n := editBundle(recs); n > 0 {
				applied += n
				blob, err := prov.MarshalJSONRecords(recs)
				if err != nil {
					in.t.Fatal(err)
				}
				if err := cl.S3.Put(in.bucket, bkey, blob, bundle.Metadata); err != nil {
					in.t.Fatal(err)
				}
			}
		}
	}
	if applied == 0 {
		in.t.Fatal("no stored record matched; cannot inject")
	}
}

func (in *s3RawInjector) mutateString(subject prov.Ref, attr, newVal string) {
	in.t.Helper()
	// Process records ride carriers as q-* entries: subject, attr, value.
	prefix := subject.String() + s3FieldSep + attr + s3FieldSep
	in.rewriteEverywhere(func(meta map[string]string) int {
		n := 0
		for k, v := range meta {
			if strings.HasPrefix(k, "q-") && strings.HasPrefix(v, prefix) {
				meta[k] = prefix + core.EscapeLiteral(newVal)
				n++
			}
		}
		return n
	}, func(recs []prov.Record) int {
		n := 0
		for i := range recs {
			if recs[i].Subject == subject && recs[i].Attr == attr {
				recs[i].Value = prov.StringValue(core.EscapeLiteral(newVal))
				n++
			}
		}
		return n
	})
}

// editOwnInput rewrites one p-* input entry on the subject file's own data
// object: drop deletes it, otherwise it is repointed at newIn.
func (in *s3RawInjector) editOwnInput(subject, oldIn prov.Ref, drop bool, newIn prov.Ref) {
	in.t.Helper()
	key := s3DataPrefix + string(subject.Object)
	entry := prov.AttrInput + s3FieldSep + oldIn.String()
	applied := 0
	for _, cl := range in.clouds {
		obj, err := cl.S3.Get(in.bucket, key)
		if err != nil {
			continue // the file's home is another shard
		}
		changed := 0
		for k, v := range obj.Metadata {
			if strings.HasPrefix(k, "p-") && v == entry {
				if drop {
					delete(obj.Metadata, k)
				} else {
					obj.Metadata[k] = prov.AttrInput + s3FieldSep + newIn.String()
				}
				changed++
			}
		}
		if changed > 0 {
			applied += changed
			if err := cl.S3.Put(in.bucket, obj.Key, obj.Body, obj.Metadata); err != nil {
				in.t.Fatal(err)
			}
		}
	}
	if applied == 0 {
		in.t.Fatalf("no stored input edge %s -> %s to rewrite", subject, oldIn)
	}
}

func (in *s3RawInjector) dropInput(subject, input prov.Ref) {
	in.editOwnInput(subject, input, true, prov.Ref{})
}

func (in *s3RawInjector) swapInput(subject, oldIn, newIn prov.Ref) {
	in.editOwnInput(subject, oldIn, false, newIn)
}
