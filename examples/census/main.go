// Census: the paper's introductory scenario. "Data from the US Census
// databases are released on the cloud... Scientists who wish to analyze
// this data for trends can download the data set to their local compute
// grid, process it, and then upload the results back to the cloud, easily
// sharing their results with fellow researchers."
//
// Three research groups are three *separate clients* of one shared region,
// each with its own write-ahead-log queue (the paper's per-client WAL).
// Group C downloads both groups' shared results, derives from them, and the
// combined provenance — spanning all three clients — answers "where did
// this come from?" for anyone.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"passcloud"
)

// ctx scopes every cloud call the example makes; a real service would
// derive per-request contexts with deadlines here.
var ctx = context.Background()

func main() {
	region, err := passcloud.NewRegion(passcloud.Options{
		Architecture: passcloud.S3SimpleDBSQS,
		Seed:         2000,
	})
	if err != nil {
		log.Fatal(err)
	}

	bureau, err := region.NewClient("census-bureau")
	must(err)
	groupA, err := region.NewClient("group-a")
	must(err)
	groupB, err := region.NewClient("group-b")
	must(err)
	groupC, err := region.NewClient("group-c")
	must(err)

	// The Census Bureau releases the data set on the cloud.
	release := "/public/census/us-census-2000.dat"
	must(bureau.Ingest(ctx, release, []byte(strings.Repeat("county,population,income\n", 200))))
	must(bureau.Sync(ctx))
	region.Settle()

	// Group A downloads the release and derives migration trends.
	_, err = groupA.Fetch(ctx, release)
	must(err)
	trendTool := groupA.Exec(nil, passcloud.ProcessSpec{
		Name: "trend-analyzer",
		Argv: []string{"trend-analyzer", "--metric=migration", release},
		Env:  "LAB=harvard GRID=odyssey",
	})
	must(trendTool.Read(release))
	must(trendTool.Write("/shared/groupA/migration-trends.dat", []byte("northeast,-0.8\nsouthwest,+2.1\n")))
	must(trendTool.Close(ctx, "/shared/groupA/migration-trends.dat"))
	trendTool.Exit()
	must(groupA.Sync(ctx))

	// Group B independently models income from the same release.
	_, err = groupB.Fetch(ctx, release)
	must(err)
	incomeTool := groupB.Exec(nil, passcloud.ProcessSpec{
		Name: "income-model",
		Argv: []string{"income-model", "--quantiles=10", release},
		Env:  "LAB=berkeley GRID=millennium",
	})
	must(incomeTool.Read(release))
	must(incomeTool.Write("/shared/groupB/income-deciles.dat", []byte("d1,8k\nd10,142k\n")))
	must(incomeTool.Close(ctx, "/shared/groupB/income-deciles.dat"))
	incomeTool.Exit()
	must(groupB.Sync(ctx))
	region.Settle()

	// Group C downloads both shared results and combines them.
	_, err = groupC.Fetch(ctx, "/shared/groupA/migration-trends.dat")
	must(err)
	_, err = groupC.Fetch(ctx, "/shared/groupB/income-deciles.dat")
	must(err)
	correlate := groupC.Exec(nil, passcloud.ProcessSpec{
		Name: "correlate",
		Argv: []string{"correlate", "/shared/groupA/migration-trends.dat", "/shared/groupB/income-deciles.dat"},
	})
	must(correlate.Read("/shared/groupA/migration-trends.dat"))
	must(correlate.Read("/shared/groupB/income-deciles.dat"))
	must(correlate.Write("/shared/groupC/migration-vs-income.dat", []byte("r=0.63\n")))
	must(correlate.Close(ctx, "/shared/groupC/migration-vs-income.dat"))
	correlate.Exit()
	must(groupC.Sync(ctx))
	region.Settle()

	// A fourth researcher — any client — finds group C's result and asks:
	// what is this derived from, and how exactly?
	obj, err := bureau.Get(ctx, "/shared/groupC/migration-vs-income.dat")
	must(err)
	fmt.Printf("found shared result %s (%q)\n\n", obj.Ref, obj.Data)

	// The v2 query API answers "where did this come from?" with one
	// composable descriptor: walk input edges from the result, records
	// included — no per-ancestor follow-up calls.
	ancestry, err := bureau.Search(ctx, passcloud.QuerySpec{
		Refs:      []passcloud.Ref{obj.Ref},
		Direction: passcloud.TraverseAncestors,
	})
	must(err)
	fmt.Println("complete cross-client ancestry:")
	var ancestors []passcloud.Ref
	for _, e := range ancestry.Entries {
		ancestors = append(ancestors, e.Ref)
		detail := ""
		for _, r := range e.Records {
			if r.Attr == "argv" {
				detail = " — " + r.Value
			}
		}
		fmt.Printf("  %s%s\n", e.Ref, detail)
	}

	// The same surface answers parameterized questions the fixed verbs
	// never could: which tool processes ran on the Odyssey grid?
	odyssey, err := bureau.Search(ctx, passcloud.QuerySpec{
		Attrs:     map[string]string{"env": "LAB=harvard GRID=odyssey"},
		RefPrefix: "proc/",
		RefsOnly:  true,
	})
	must(err)
	fmt.Printf("\ntools run on the Odyssey grid: %d\n", len(odyssey.Entries))

	// The ancestry must reach the census release itself.
	for _, a := range ancestors {
		if a.Object == release {
			fmt.Printf("\nverified: the result derives from %s\n", release)
			// And the bureau cannot delete data the community built on:
			if err := bureau.SafeDelete(ctx, release); err != nil {
				fmt.Printf("SafeDelete correctly refused: %v\n", err)
			}
			return
		}
	}
	log.Fatal("ancestry did not reach the census release")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
