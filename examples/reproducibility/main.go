// Reproducibility: the paper's third motivating scenario. "Consider the
// efforts of one group attempting to reproduce the results of another
// research group. If the reproduction does not yield identical results,
// comparing the provenance will shed insight into the differences in the
// experiment."
//
// Two groups run the "same" pipeline over the same released data set, but
// get different outputs. Diffing the stored provenance of the two results
// pinpoints the divergence: a different tool flag.
package main

import (
	"context"
	"fmt"
	"log"

	"passcloud"
)

// ctx scopes every cloud call the example makes; a real service would
// derive per-request contexts with deadlines here.
var ctx = context.Background()

// runExperiment executes one group's pipeline and returns its result path.
func runExperiment(client *passcloud.Client, group, flag string) string {
	sim := client.Exec(nil, passcloud.ProcessSpec{
		Name: "simulate",
		Argv: []string{"simulate", flag, "/public/initial-conditions.dat"},
		Env:  "GROUP=" + group,
	})
	must(sim.Read("/public/initial-conditions.dat"))
	raw := "/groups/" + group + "/raw.dat"
	must(sim.Write(raw, []byte("raw-output-"+flag)))
	must(sim.Close(ctx, raw))
	sim.Exit()

	reduce := client.Exec(nil, passcloud.ProcessSpec{
		Name: "reduce",
		Argv: []string{"reduce", "--mean", raw},
	})
	must(reduce.Read(raw))
	result := "/groups/" + group + "/result.dat"
	must(reduce.Write(result, []byte("mean-of-"+flag)))
	must(reduce.Close(ctx, result))
	reduce.Exit()
	return result
}

func main() {
	client, err := passcloud.New(passcloud.Options{
		Architecture: passcloud.S3SimpleDBSQS,
		Seed:         1234,
	})
	if err != nil {
		log.Fatal(err)
	}

	must(client.Ingest(ctx, "/public/initial-conditions.dat", []byte("IC: rho=1.0 T=270K")))

	// The original experiment and the attempted reproduction.
	original := runExperiment(client, "original", "--dt=0.001")
	replica := runExperiment(client, "replica", "--dt=0.01")

	must(client.Sync(ctx))
	client.Settle()

	a, err := client.Get(ctx, original)
	must(err)
	b, err := client.Get(ctx, replica)
	must(err)

	fmt.Printf("original result: %q\nreplica  result: %q\n\n", a.Data, b.Data)
	if string(a.Data) == string(b.Data) {
		fmt.Println("results identical; nothing to investigate")
		return
	}
	fmt.Println("results differ — comparing provenance of the two experiments")

	// Walk both ancestries, collecting each ancestor's argv records.
	argvs := func(result passcloud.Ref) map[string]string {
		out := map[string]string{}
		ancestors, err := client.Ancestors(ctx, result)
		must(err)
		for _, ref := range ancestors {
			records, err := client.Provenance(ctx, ref)
			must(err)
			for _, r := range records {
				if r.Attr == "argv" {
					// Key by tool name (first argv word) for comparison.
					name := r.Value
					for i := 0; i < len(name); i++ {
						if name[i] == ' ' {
							name = name[:i]
							break
						}
					}
					out[name] = r.Value
				}
			}
		}
		return out
	}
	origArgv := argvs(a.Ref)
	replArgv := argvs(b.Ref)

	for tool, cmd := range origArgv {
		if other, ok := replArgv[tool]; ok && other != cmd {
			fmt.Printf("\ndivergence found in %q:\n  original: %s\n  replica:  %s\n", tool, cmd, other)
		}
	}

	// Both derive from the same initial conditions — confirm the inputs
	// were NOT the difference.
	shared := false
	for _, ref := range mustRefs(client.Ancestors(ctx, a.Ref)) {
		if ref.Object == "/public/initial-conditions.dat" {
			shared = true
		}
	}
	if shared {
		fmt.Println("\ninputs were identical (same initial-conditions version); the flag was the difference")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustRefs(refs []passcloud.Ref, err error) []passcloud.Ref {
	must(err)
	return refs
}
