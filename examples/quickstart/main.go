// Quickstart: store data with provenance on the simulated cloud, read it
// back verified, and ask a lineage question — the smallest useful tour of
// the passcloud API.
package main

import (
	"context"
	"fmt"
	"log"

	"passcloud"
)

// ctx scopes every cloud call the example makes; a real service would
// derive per-request contexts with deadlines here.
var ctx = context.Background()

func main() {
	// A client bundles a PASS system with a storage architecture. The
	// third architecture (S3 + SimpleDB + SQS write-ahead log) is the one
	// that satisfies every property in the paper's Table 1.
	client, err := passcloud.New(passcloud.Options{
		Architecture: passcloud.S3SimpleDBSQS,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A data set appears in the cloud (like downloading a public data set).
	if err := client.Ingest(ctx, "/datasets/readings.csv", []byte("t0,1.7\nt1,2.1\nt2,1.9\n")); err != nil {
		log.Fatal(err)
	}

	// A process reads it and derives a result. PASS observes the syscalls:
	// nothing is declared manually.
	smooth := client.Exec(nil, passcloud.ProcessSpec{
		Name: "smooth",
		Argv: []string{"smooth", "--window=3", "/datasets/readings.csv"},
	})
	if err := smooth.Read("/datasets/readings.csv"); err != nil {
		log.Fatal(err)
	}
	if err := smooth.Write("/results/smoothed.csv", []byte("t1,1.9\n")); err != nil {
		log.Fatal(err)
	}
	// Close persists the file and its provenance — including the process's
	// own provenance, which precedes it (causal ordering).
	if err := smooth.Close(ctx, "/results/smoothed.csv"); err != nil {
		log.Fatal(err)
	}
	smooth.Exit()

	// Drain the write-ahead log (the commit daemon would normally run in
	// the background) and let replication settle.
	if err := client.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	client.Settle()

	// Reads return data with *verified* provenance: the MD5-plus-nonce
	// consistency record proves these records describe these bytes.
	obj, err := client.Get(ctx, "/results/smoothed.csv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("object %s: %d bytes\n", obj.Ref, len(obj.Data))
	for _, r := range obj.Records {
		fmt.Printf("  %-6s = %s\n", r.Attr, r.Value)
	}

	// Lineage questions are composable Query API v2 descriptors: filters
	// (tool, type, attributes, ref prefix), an optional traversal, and a
	// projection. The backend compiles each into its cheapest plan —
	// indexed on SimpleDB (Table 1: efficient query).
	outputs, err := client.Search(ctx, passcloud.QuerySpec{
		Tool:     "smooth",
		Type:     "file",
		RefsOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("files produced by smooth:")
	for _, e := range outputs.Entries {
		fmt.Printf(" %s", e.Ref)
	}
	fmt.Println()

	// The same surface answers ancestry: traverse input edges from a seed.
	ancestors, err := client.Search(ctx, passcloud.QuerySpec{
		Refs:      []passcloud.Ref{obj.Ref},
		Direction: passcloud.TraverseAncestors,
		RefsOnly:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full ancestry of %s:", obj.Ref)
	for _, e := range ancestors.Entries {
		fmt.Printf(" %s", e.Ref)
	}
	fmt.Println()

	// Explain predicts a query's cloud cost before running it.
	plan, err := client.Explain(passcloud.QuerySpec{Tool: "smooth", Type: "file", RefsOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query plan: strategy=%s, predicted ops=%d, cached=%v\n",
		plan.Strategy, plan.EstOps, plan.Cached)

	// Every simulated AWS call was metered at January-2009 prices.
	u := client.Usage()
	fmt.Printf("cloud usage: %d S3 ops, %d SimpleDB ops, %d SQS ops — $%.6f\n",
		u.S3Ops, u.SimpleDBOps, u.SQSOps, u.USD)
}
