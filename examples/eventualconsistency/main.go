// Eventualconsistency: the heart of the paper made visible. AWS services
// "sacrifice perfect consistency and provide eventual consistency", so data
// in S3 and provenance in SimpleDB can disagree transiently — the exact
// hazard the MD5-plus-nonce consistency record (§4.2) exists to catch.
//
// This example runs the S3+SimpleDB architecture on a region with a
// replication delay, overwrites one object repeatedly, and shows that the
// verified read never returns a torn data/provenance pair: it either
// returns a matching pair or surfaces an explicit error until the region
// converges.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"passcloud"
)

// ctx scopes every cloud call the example makes; a real service would
// derive per-request contexts with deadlines here.
var ctx = context.Background()

func main() {
	client, err := passcloud.New(passcloud.Options{
		Architecture:     passcloud.S3SimpleDB,
		Seed:             99,
		ConsistencyDelay: 15 * time.Second, // replicas lag up to 15s
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three generations of the same file, written in quick succession so
	// replicas hold a mix of versions.
	writer := client.Exec(nil, passcloud.ProcessSpec{Name: "generator"})
	for gen := 0; gen < 3; gen++ {
		payload := fmt.Sprintf("generation-%d", gen)
		if err := writer.Write("/data/rolling.dat", []byte(payload)); err != nil {
			log.Fatal(err)
		}
		if err := writer.Close(ctx, "/data/rolling.dat"); err != nil {
			log.Fatal(err)
		}
	}
	writer.Exit()
	if err := client.Sync(ctx); err != nil {
		log.Fatal(err)
	}

	// Read immediately, before replicas converge. The verified read
	// (GET + GetAttributes + MD5(data‖nonce) comparison with retry) never
	// hands us a mismatched pair.
	fmt.Println("reading during the inconsistency window:")
	results := map[string]int{}
	for i := 0; i < 30; i++ {
		obj, err := client.Get(ctx, "/data/rolling.dat")
		switch {
		case errors.Is(err, passcloud.ErrInconsistent):
			results["inconsistent (surfaced, retriable)"]++
		case errors.Is(err, passcloud.ErrNotFound):
			results["not yet visible"]++
		case err != nil:
			log.Fatal(err)
		default:
			// Returned: data and provenance must describe each other.
			version := fmt.Sprintf("returned %s matching version %d", obj.Data, obj.Ref.Version)
			results[version]++
			wantData := fmt.Sprintf("generation-%d", obj.Ref.Version)
			if string(obj.Data) != wantData {
				log.Fatalf("TORN READ: data %q paired with version %d provenance", obj.Data, obj.Ref.Version)
			}
		}
	}
	for outcome, n := range results {
		fmt.Printf("  %2d× %s\n", n, outcome)
	}

	// Let replication converge; now every read returns the final state.
	client.Settle()
	obj, err := client.Get(ctx, "/data/rolling.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter convergence: %q at version %d — verified consistent\n", obj.Data, obj.Ref.Version)

	u := client.Usage()
	fmt.Printf("cloud bill: %d S3 ops, %d SimpleDB ops — $%.6f\n", u.S3Ops, u.SimpleDBOps, u.USD)
}
