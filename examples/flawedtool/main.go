// Flawedtool: the paper's motivating query. "Imagine that a researcher
// discovers that a particular version of a widely-used analysis tool is
// flawed. She can identify all data sets affected by the flawed software by
// querying the provenance."
//
// Several datasets are processed by aligner v1.0 and v1.1; later, v1.0
// turns out to be flawed. The provenance pins down exactly which stored
// datasets — including downstream derivations — are tainted, and which are
// safe.
package main

import (
	"context"
	"fmt"
	"log"

	"passcloud"
)

// ctx scopes every cloud call the example makes; a real service would
// derive per-request contexts with deadlines here.
var ctx = context.Background()

func main() {
	client, err := passcloud.New(passcloud.Options{
		Architecture: passcloud.S3SimpleDB, // indexed queries; atomicity not needed here
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Six input samples; half processed with each aligner version.
	for i := 0; i < 6; i++ {
		sample := fmt.Sprintf("/samples/sample%02d.fastq", i)
		must(client.Ingest(ctx, sample, []byte(fmt.Sprintf("reads-for-sample-%02d", i))))

		version := "1.0"
		tool := "aligner-v1.0"
		if i >= 3 {
			version = "1.1"
			tool = "aligner-v1.1"
		}
		align := client.Exec(nil, passcloud.ProcessSpec{
			Name: tool,
			Argv: []string{"aligner", "--version=" + version, sample},
		})
		must(align.Read(sample))
		out := fmt.Sprintf("/aligned/sample%02d.bam", i)
		must(align.Write(out, []byte("aligned-"+version)))
		must(align.Close(ctx, out))
		align.Exit()
	}

	// A downstream merge consumes one tainted and one clean alignment.
	merge := client.Exec(nil, passcloud.ProcessSpec{
		Name: "merge",
		Argv: []string{"merge", "/aligned/sample00.bam", "/aligned/sample05.bam"},
	})
	must(merge.Read("/aligned/sample00.bam"))
	must(merge.Read("/aligned/sample05.bam"))
	must(merge.Write("/merged/cohort.bam", []byte("merged")))
	must(merge.Close(ctx, "/merged/cohort.bam"))
	merge.Exit()

	must(client.Sync(ctx))
	client.Settle()

	// The discovery: aligner v1.0 is flawed. One indexed query finds its
	// direct outputs...
	direct, err := client.OutputsOf(ctx, "aligner-v1.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("datasets produced directly by the flawed aligner v1.0:")
	for _, ref := range direct {
		fmt.Printf("  %s\n", ref)
	}

	// ...and the descendant closure finds everything contaminated
	// downstream (the merge result included).
	tainted, err := client.DescendantsOfOutputs(ctx, "aligner-v1.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\neverything derived from those outputs (also suspect):")
	for _, ref := range tainted {
		fmt.Printf("  %s\n", ref)
	}

	// Sanity: the clean aligner's exclusive outputs are not implicated.
	clean, err := client.OutputsOf(ctx, "aligner-v1.1")
	if err != nil {
		log.Fatal(err)
	}
	taintedSet := map[string]bool{}
	for _, rfs := range [][]passcloud.Ref{direct, tainted} {
		for _, r := range rfs {
			taintedSet[r.Object] = true
		}
	}
	fmt.Println("\nclean v1.1 outputs unaffected:")
	for _, ref := range clean {
		if ref.Object != "/aligned/sample05.bam" && taintedSet[ref.Object] {
			log.Fatalf("clean output %s wrongly implicated", ref)
		}
		fmt.Printf("  %s\n", ref)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
