package passcloud

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"passcloud/internal/core"
	"passcloud/internal/prov"
)

// This file is the public composable query surface (Query API v2): one
// QuerySpec descriptor answers every lineage question the fixed verbs
// answered — and every parameterized variation of them — with filters
// pushed into the storage backend, results paginated behind snapshot-pinned
// cursors, and a cost planner (Explain) that predicts the cloud bill of a
// query before it runs.

// TraversalDirection selects an ancestry traversal from the filtered seeds.
type TraversalDirection int

// Traversal directions.
const (
	// TraverseNone returns the matched set itself.
	TraverseNone TraversalDirection = iota
	// TraverseAncestors walks input edges away from the matches.
	TraverseAncestors
	// TraverseDescendants walks derived-object edges away from the matches.
	TraverseDescendants
)

// QuerySpec is a composable provenance query. All filters AND together;
// the zero spec selects the whole repository (the paper's Q.1).
type QuerySpec struct {
	// Tool selects outputs of the named tool: versions listing an
	// instance of it (a subject named Tool) among their inputs (Q.2).
	Tool string
	// Type selects versions of the given object type: "file", "process"
	// or "pipe".
	Type string
	// Attrs selects versions carrying attr = value for every listed pair.
	Attrs map[string]string
	// RefPrefix selects versions whose "object:version" form has the
	// prefix ("/data/x:" is every version of /data/x; "/data/" is
	// everything under /data/).
	RefPrefix string
	// Refs pins the seed set to exactly these versions.
	Refs []Ref

	// Direction optionally traverses the ancestry graph from the matches.
	Direction TraversalDirection
	// Depth bounds the traversal (0 = unlimited).
	Depth int
	// IncludeSeeds keeps traversal results that also matched the filters
	// themselves (Q.3 excludes them by default).
	IncludeSeeds bool

	// RefsOnly skips record retrieval: results carry references only,
	// which on indexed backends avoids fetching any non-matching object's
	// provenance.
	RefsOnly bool

	// Limit paginates: at most Limit entries per page, with an opaque
	// resume cursor. Paginated results are ref-sorted and pinned to the
	// snapshot generation of the first page, so a page sequence is
	// consistent even across concurrent writes.
	Limit int
	// Cursor resumes a previous page sequence.
	Cursor string
}

// compile lowers the public spec to the internal descriptor.
func (s QuerySpec) compile() prov.Query {
	q := prov.Query{
		Tool:         s.Tool,
		Type:         s.Type,
		RefPrefix:    s.RefPrefix,
		Direction:    prov.Direction(s.Direction),
		Depth:        s.Depth,
		IncludeSeeds: s.IncludeSeeds,
		Limit:        s.Limit,
		Cursor:       s.Cursor,
	}
	if s.RefsOnly {
		q.Projection = prov.ProjectRefs
	}
	for _, r := range s.Refs {
		q.Refs = append(q.Refs, toInternalRef(r))
	}
	// Canonicalize the map: the descriptor's key must not depend on
	// iteration order.
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		q.Attrs = append(q.Attrs, prov.AttrFilter{Attr: k, Value: s.Attrs[k]})
	}
	return q
}

// SearchResult is one page (or the whole result) of a Search.
type SearchResult struct {
	// Entries are the matches, with records unless RefsOnly was set.
	Entries []ProvenanceEntry
	// Cursor resumes the next page; empty when the results are complete.
	Cursor string
}

// Cursor errors, re-exported for errors.Is.
var (
	// ErrBadCursor: the cursor is malformed or belongs to a different
	// query.
	ErrBadCursor = core.ErrBadCursor
	// ErrCursorExpired: the cursor's pinned snapshot is gone and the
	// repository has changed; restart the page sequence.
	ErrCursorExpired = core.ErrCursorExpired
)

// Search runs one composable query and materializes the result (one page
// of it when Limit is set).
func (c *Client) Search(ctx context.Context, spec QuerySpec) (*SearchResult, error) {
	q, err := c.querier()
	if err != nil {
		return nil, err
	}
	res := &SearchResult{}
	for entry, err := range q.Query(ctx, spec.compile()) {
		if err != nil {
			return nil, err
		}
		res.Entries = append(res.Entries, ProvenanceEntry{
			Ref:     toPublicRef(entry.Ref),
			Records: toPublicRecords(entry.Records),
		})
		if entry.Cursor != "" {
			res.Cursor = entry.Cursor
		}
	}
	return res, nil
}

// SearchSeq streams one composable query. A non-nil error ends the
// sequence (its entry is zero); breaking early is allowed and releases the
// underlying scan. For paginated specs, prefer Search — the resume cursor
// is surfaced on SearchResult.
func (c *Client) SearchSeq(ctx context.Context, spec QuerySpec) iter.Seq2[ProvenanceEntry, error] {
	return func(yield func(ProvenanceEntry, error) bool) {
		q, err := c.querier()
		if err != nil {
			yield(ProvenanceEntry{}, err)
			return
		}
		for entry, err := range q.Query(ctx, spec.compile()) {
			if err != nil {
				yield(ProvenanceEntry{}, err)
				return
			}
			pub := ProvenanceEntry{Ref: toPublicRef(entry.Ref), Records: toPublicRecords(entry.Records)}
			if !yield(pub, nil) {
				return
			}
		}
	}
}

// PlanStep is one predicted operation class of a query plan.
type PlanStep struct {
	// Service is "S3", "SimpleDB", or "-" for client-side work.
	Service string
	// Op is the operation name.
	Op string
	// Count is the predicted number of calls.
	Count int64
	// Note explains the step.
	Note string
}

// QueryPlan predicts how the selected architecture executes a spec and
// what it costs — the paper's Table 3 cost model generalized to arbitrary
// queries.
type QueryPlan struct {
	// Arch is the architecture name.
	Arch string
	// Strategy names the plan shape ("scan", "indexed-two-phase", ...).
	Strategy string
	// Pushdown lists predicate expressions evaluated inside the backend.
	Pushdown []string
	// Steps is the per-operation breakdown.
	Steps []PlanStep
	// EstOps is the predicted total cloud operations.
	EstOps int64
	// Cached means a warm snapshot or memo answers at zero cloud ops.
	Cached bool
	// Exact means the prediction derives from complete client-side
	// statistics (single-writer repository); shared-region writes by
	// other clients degrade it to an estimate.
	Exact bool
}

// String renders the compact multi-line form.
func (p QueryPlan) String() string { return p.internal().String() }

func (p QueryPlan) internal() core.QueryPlan {
	out := core.QueryPlan{
		Arch:     p.Arch,
		Strategy: p.Strategy,
		Pushdown: p.Pushdown,
		EstOps:   p.EstOps,
		Cached:   p.Cached,
		Exact:    p.Exact,
	}
	for _, s := range p.Steps {
		out.Steps = append(out.Steps, core.PlanStep(s))
	}
	return out
}

// Explain predicts the cloud cost of Search(spec) without running it.
func (c *Client) Explain(spec QuerySpec) (QueryPlan, error) {
	q, err := c.querier()
	if err != nil {
		return QueryPlan{}, err
	}
	desc := spec.compile()
	if err := desc.Validate(); err != nil {
		return QueryPlan{}, fmt.Errorf("passcloud: %w", err)
	}
	p := q.Explain(desc)
	pub := QueryPlan{
		Arch:     p.Arch,
		Strategy: p.Strategy,
		Pushdown: p.Pushdown,
		EstOps:   p.EstOps,
		Cached:   p.Cached,
		Exact:    p.Exact,
	}
	for _, s := range p.Steps {
		pub.Steps = append(pub.Steps, PlanStep(s))
	}
	return pub, nil
}
