package passcloud

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// searchClient loads a small repository: five ingested files under /data/
// plus one process-derived result.
func searchClient(t *testing.T, arch Architecture) *Client {
	t.Helper()
	ctx := context.Background()
	c, err := New(Options{Architecture: arch, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Ingest(ctx, fmt.Sprintf("/data/f%d", i), []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	p := c.Exec(nil, ProcessSpec{Name: "analyze", Argv: []string{"analyze"}})
	if err := p.Read("/data/f0"); err != nil {
		t.Fatal(err)
	}
	if err := p.Write("/results/out", []byte("r")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(ctx, "/results/out"); err != nil {
		t.Fatal(err)
	}
	p.Exit()
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	return c
}

func archs() map[string]Architecture {
	return map[string]Architecture{
		"s3":         S3Only,
		"s3+sdb":     S3SimpleDB,
		"s3+sdb+sqs": S3SimpleDBSQS,
	}
}

// TestSearchBasics: the descriptor answers the fixed verbs' questions.
func TestSearchBasics(t *testing.T) {
	ctx := context.Background()
	for name, arch := range archs() {
		t.Run(name, func(t *testing.T) {
			c := searchClient(t, arch)

			// Q.2 as a descriptor.
			res, err := c.Search(ctx, QuerySpec{Tool: "analyze", Type: "file", RefsOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Entries) != 1 || res.Entries[0].Ref.Object != "/results/out" {
				t.Fatalf("tool search = %+v", res.Entries)
			}

			// Attribute filter: all processes.
			res, err = c.Search(ctx, QuerySpec{Type: "process", RefsOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Entries) != 1 || res.Entries[0].Ref.Object != "proc/1/analyze" {
				t.Fatalf("type search = %+v", res.Entries)
			}

			// Prefix listing with records.
			res, err = c.Search(ctx, QuerySpec{RefPrefix: "/data/"})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Entries) != 5 {
				t.Fatalf("prefix search = %d entries", len(res.Entries))
			}
			for _, e := range res.Entries {
				if len(e.Records) == 0 {
					t.Fatalf("full projection entry %v has no records", e.Ref)
				}
			}

			// Ancestors traversal from the result.
			res, err = c.Search(ctx, QuerySpec{
				Refs:      []Ref{{Object: "/results/out", Version: 0}},
				Direction: TraverseAncestors,
				RefsOnly:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			found := map[string]bool{}
			for _, e := range res.Entries {
				found[e.Ref.Object] = true
			}
			if !found["/data/f0"] || !found["proc/1/analyze"] {
				t.Fatalf("ancestors = %+v", res.Entries)
			}

			// Explain produces a plan for the same spec. The earlier
			// Search memoized this exact query, so the plan must report
			// the free repeat.
			plan, err := c.Explain(QuerySpec{Tool: "analyze", Type: "file", RefsOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			if plan.Strategy == "" || plan.Arch == "" {
				t.Fatalf("plan = %+v", plan)
			}
			if arch != S3Only {
				if !plan.Cached || plan.EstOps != 0 {
					t.Fatalf("memoized query not planned as free: %+v", plan)
				}
				// An unseen query still shows its pushdown.
				cold, err := c.Explain(QuerySpec{Tool: "nosuch", Type: "file", RefsOnly: true})
				if err != nil {
					t.Fatal(err)
				}
				if len(cold.Pushdown) == 0 || cold.Strategy != "indexed-two-phase" {
					t.Fatalf("indexed plan has no pushdown: %+v", cold)
				}
			}
		})
	}
}

// TestSearchCursorStableAcrossWrites is the pagination consistency
// contract: a page sequence started before a write observes one snapshot —
// no dropped entries, no duplicates, no phantom — while a fresh search
// afterwards sees the new generation.
func TestSearchCursorStableAcrossWrites(t *testing.T) {
	ctx := context.Background()
	for name, arch := range archs() {
		t.Run(name, func(t *testing.T) {
			c := searchClient(t, arch)
			spec := QuerySpec{RefPrefix: "/data/", RefsOnly: true, Limit: 2}

			// Page one.
			page1, err := c.Search(ctx, spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(page1.Entries) != 2 || page1.Cursor == "" {
				t.Fatalf("page1 = %d entries, cursor %q", len(page1.Entries), page1.Cursor)
			}

			// A write lands mid-pagination (PutBatch via Ingest + Sync).
			if err := c.Ingest(ctx, "/data/f9", []byte("new")); err != nil {
				t.Fatal(err)
			}
			if err := c.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			c.Settle()

			// Remaining pages resume the pinned snapshot.
			var rest []ProvenanceEntry
			cursor := page1.Cursor
			for cursor != "" {
				next := spec
				next.Cursor = cursor
				page, err := c.Search(ctx, next)
				if err != nil {
					t.Fatal(err)
				}
				rest = append(rest, page.Entries...)
				cursor = page.Cursor
			}
			all := append(append([]ProvenanceEntry{}, page1.Entries...), rest...)
			seen := map[string]int{}
			for _, e := range all {
				seen[e.Ref.String()]++
			}
			if len(all) != 5 {
				t.Fatalf("page sequence returned %d entries, want the 5 pre-write files: %v", len(all), seen)
			}
			for ref, n := range seen {
				if n != 1 {
					t.Fatalf("entry %s returned %d times", ref, n)
				}
			}
			if seen["/data/f9:0"] != 0 {
				t.Fatal("phantom: mid-pagination write leaked into the pinned sequence")
			}

			// A fresh first page observes the new generation.
			fresh, err := c.Search(ctx, QuerySpec{RefPrefix: "/data/", RefsOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			freshSeen := map[string]bool{}
			for _, e := range fresh.Entries {
				freshSeen[e.Ref.String()] = true
			}
			if len(fresh.Entries) != 6 || !freshSeen["/data/f9:0"] {
				t.Fatalf("fresh search = %d entries (%v), want 6 incl /data/f9", len(fresh.Entries), freshSeen)
			}
		})
	}
}

// TestSearchCursorErrors: cursors are opaque but not forgeable — garbage
// and cross-query reuse fail loudly.
func TestSearchCursorErrors(t *testing.T) {
	ctx := context.Background()
	c := searchClient(t, S3SimpleDB)

	if _, err := c.Search(ctx, QuerySpec{RefPrefix: "/data/", RefsOnly: true, Cursor: "garbage!"}); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("garbage cursor: %v", err)
	}

	page, err := c.Search(ctx, QuerySpec{RefPrefix: "/data/", RefsOnly: true, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Same cursor, different logical query.
	other := QuerySpec{Type: "process", RefsOnly: true, Cursor: page.Cursor}
	if _, err := c.Search(ctx, other); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("cross-query cursor: %v", err)
	}

	// Same cursor, different client. The second client's process-local
	// generation counter matches the first's (identical workload), so
	// without a per-store instance token the cursor would silently resume a
	// result set the second store never pinned.
	c2 := searchClient(t, S3SimpleDB)
	foreign := QuerySpec{RefPrefix: "/data/", RefsOnly: true, Limit: 2, Cursor: page.Cursor}
	if _, err := c2.Search(ctx, foreign); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("foreign-client cursor: %v", err)
	}
}

// TestExplainEvictedPinCostsReEvaluation: Explain may promise a free
// pinned-page resume only while the pin is resident. Once newer paginated
// queries evict it, resuming at an unchanged generation re-evaluates the
// descriptor — with the cache disabled that is real cloud work, and the
// plan must predict it instead of hardcoding zero.
func TestExplainEvictedPinCostsReEvaluation(t *testing.T) {
	ctx := context.Background()
	for name, arch := range archs() {
		t.Run(name, func(t *testing.T) {
			c, err := New(Options{Architecture: arch, Seed: 5, DisableQueryCache: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if err := c.Ingest(ctx, fmt.Sprintf("/data/f%d", i), []byte{byte('a' + i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			c.Settle()

			spec := QuerySpec{RefPrefix: "/data/", RefsOnly: true, Limit: 2}
			page, err := c.Search(ctx, spec)
			if err != nil || page.Cursor == "" {
				t.Fatalf("page1 cursor=%q err=%v", page.Cursor, err)
			}
			resume := spec
			resume.Cursor = page.Cursor

			// Pin resident: the resume really is free.
			plan, err := c.Explain(resume)
			if err != nil {
				t.Fatal(err)
			}
			if !plan.Cached || plan.EstOps != 0 {
				t.Fatalf("resident-pin plan not free: %+v", plan)
			}

			// Evict the pin with newer paginated queries (the registry
			// retains a bounded number; generation is unchanged throughout).
			for i := 0; i < 12; i++ {
				filler := QuerySpec{RefPrefix: fmt.Sprintf("/data/f%d:", i), RefsOnly: true, Limit: 1}
				if _, err := c.Search(ctx, filler); err != nil {
					t.Fatal(err)
				}
			}

			plan, err = c.Explain(resume)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Cached || plan.EstOps == 0 {
				t.Fatalf("evicted-pin plan still claims a free resume: %+v", plan)
			}

			// The prediction matches the metered re-evaluation.
			before := c.Usage()
			if _, err := c.Search(ctx, resume); err != nil {
				t.Fatal(err)
			}
			after := c.Usage()
			metered := (after.S3Ops + after.SimpleDBOps) - (before.S3Ops + before.SimpleDBOps)
			if metered != plan.EstOps {
				t.Fatalf("resume metered %d ops, plan predicted %d", metered, plan.EstOps)
			}
		})
	}
}

// TestExplainExactDegradesOnSharedRegion: a client whose planner catalog
// never saw another client's writes must stop claiming exact predictions.
func TestExplainExactDegradesOnSharedRegion(t *testing.T) {
	ctx := context.Background()
	region, err := NewRegion(Options{Architecture: S3SimpleDB, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := region.NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := region.NewClient("bob")
	if err != nil {
		t.Fatal(err)
	}

	if err := alice.Ingest(ctx, "/shared/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := alice.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	region.Settle()

	spec := QuerySpec{RefPrefix: "/shared/", RefsOnly: true}
	alicePlan, err := alice.Explain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !alicePlan.Exact {
		t.Fatalf("alice performed every write; her plan must be exact: %+v", alicePlan)
	}
	bobPlan, err := bob.Explain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if bobPlan.Exact {
		t.Fatalf("bob never observed alice's writes; his plan must be an estimate: %+v", bobPlan)
	}
}
