// Package passcloud makes a cloud provenance-aware.
//
// It is a complete implementation of Muniswamy-Reddy, Macko and Seltzer,
// "Making a Cloud Provenance-Aware" (TaPP '09): a Provenance-Aware Storage
// System (PASS) client that stores data together with its provenance on a
// (simulated) Amazon Web Services region, using one of the paper's three
// architectures:
//
//	S3Only        data and provenance in S3 (provenance as object metadata)
//	S3SimpleDB    data in S3, provenance in SimpleDB (indexed, queryable)
//	S3SimpleDBSQS data in S3, provenance in SimpleDB, with an SQS
//	              write-ahead log providing atomicity and read correctness
//
// A Client bundles a PASS system (processes, files, syscall-level
// provenance observation) with a storage architecture. Applications run
// processes that read and write files; on close, each file's data and
// provenance — including the provenance of every transient ancestor,
// coalesced into a single batched flush — is persisted through the
// selected architecture. The provenance can then be verified on read and
// queried by lineage.
//
// The API is context-first: every method that performs cloud I/O takes a
// context.Context as its first argument, so callers control deadlines,
// cancellation and per-request scoping. Repository-wide queries are also
// available as streams (AllProvenanceSeq, ProvenanceSeq) that yield
// results incrementally instead of materializing the whole graph.
//
// The cloud behind the client is simulated (eventual consistency, request
// accounting and January-2009 pricing included), so the full system runs
// self-contained and deterministically.
package passcloud

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/core/shard"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// Architecture selects one of the paper's three designs.
type Architecture int

// The three architectures of the paper's §4.
const (
	// S3Only stores provenance as S3 object metadata (§4.1).
	S3Only Architecture = iota
	// S3SimpleDB stores provenance in SimpleDB (§4.2).
	S3SimpleDB
	// S3SimpleDBSQS adds the SQS write-ahead log (§4.3).
	S3SimpleDBSQS
)

// String names the architecture as the paper does.
func (a Architecture) String() string {
	switch a {
	case S3Only:
		return "S3"
	case S3SimpleDB:
		return "S3+SimpleDB"
	case S3SimpleDBSQS:
		return "S3+SimpleDB+SQS"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Options configures a Client. The zero value is usable: S3Only on a
// strongly consistent region.
type Options struct {
	// Architecture selects the storage design.
	Architecture Architecture
	// Seed fixes all randomness; runs with equal seeds are identical.
	Seed int64
	// ConsistencyDelay is the region's maximum replication delay. Zero
	// gives strong consistency; a positive delay reproduces the eventual-
	// consistency behaviour the paper analyzes (reads may be stale until
	// Settle is called or simulated time passes).
	ConsistencyDelay time.Duration
	// Bucket, Domain and ClientID override the default resource names.
	Bucket, Domain, ClientID string
	// Kernel is recorded in process provenance.
	Kernel string
	// DisableQueryCache turns off the query-performance subsystem: the
	// generation-stamped provenance snapshot cache that lets repeated and
	// recursive queries on an unchanged repository run at ~zero cloud ops.
	// Disable it to reproduce the paper's Table 3 costs, where every
	// query pays its full scan or indexed-query run.
	DisableQueryCache bool
	// Shards partitions the provenance namespace across that many
	// independent store instances of the selected architecture, each
	// bound to its own isolated namespace (bucket, domain, queue, billing
	// key) of the simulated region, composed behind a consistent-hash
	// router. 0 or 1 keeps the paper's single-store layout. Sharding is
	// transparent to every Client method; see the README's "Sharding &
	// multi-tenancy" section for the routing and query semantics.
	Shards int
	// Tenant labels this client's namespaces for isolation and billing:
	// two clients with different tenants share nothing — separate
	// buckets, domains and meters — even inside one Region. Empty selects
	// the default tenant. TenantUsage reads the per-tenant bill.
	Tenant string
	// DisableIntegrity turns off the tamper-evidence subsystem: no chain
	// records are appended to flushed record sets and no Merkle
	// checkpoints ride the writes. VerifyLineage and VerifyAll then
	// report every subject as chain-missing. This is the op-count parity
	// baseline; integrity adds zero cloud operations either way, since
	// chains and checkpoints ride writes the architectures already issue.
	DisableIntegrity bool
}

// Ref identifies one version of one object.
type Ref struct {
	Object  string
	Version int
}

// String renders the object:version form.
func (r Ref) String() string { return fmt.Sprintf("%s:%d", r.Object, r.Version) }

func toPublicRef(r prov.Ref) Ref { return Ref{Object: string(r.Object), Version: int(r.Version)} }
func toInternalRef(r Ref) prov.Ref {
	return prov.Ref{Object: prov.ObjectID(r.Object), Version: prov.Version(r.Version)}
}

// Record is one provenance assertion about Subject.
type Record struct {
	Subject Ref
	// Attr is the attribute name: "input", "name", "type", "argv", ...
	Attr string
	// Value is the attribute value. For input records it is the
	// referenced object version in object:version form, also available
	// structured via InputRef.
	Value string
	// IsInput reports whether this record is an ancestry edge.
	IsInput bool
	// InputRef is the referenced version when IsInput.
	InputRef Ref
}

func toPublicRecord(r prov.Record) Record {
	out := Record{
		Subject: toPublicRef(r.Subject),
		Attr:    r.Attr,
		Value:   r.Value.String(),
	}
	if r.Attr == prov.AttrInput && r.Value.Kind == prov.KindRef {
		out.IsInput = true
		out.InputRef = toPublicRef(r.Value.Ref)
	}
	return out
}

func toPublicRecords(rs []prov.Record) []Record {
	out := make([]Record, len(rs))
	for i, r := range rs {
		out[i] = toPublicRecord(r)
	}
	return out
}

// Object is retrieved data with its verified provenance.
type Object struct {
	Ref     Ref
	Data    []byte
	Records []Record
}

// Properties is the architecture's Table 1 row.
type Properties struct {
	Atomicity      bool
	Consistency    bool
	CausalOrdering bool
	EfficientQuery bool
}

// Errors, re-exported for callers to match with errors.Is.
var (
	// ErrNotFound: the object does not exist (or has not propagated).
	ErrNotFound = core.ErrNotFound
	// ErrInconsistent: data and provenance could not be reconciled within
	// the retry budget.
	ErrInconsistent = core.ErrInconsistent
	// ErrNoProvenance: data exists without provenance (an atomicity
	// violation surfaced).
	ErrNoProvenance = core.ErrNoProvenance
	// ErrSyncTimeout: Sync's commit-daemon drain did not reach quiescence
	// within its round budget or before the context ended. The returned
	// error also wraps the context's error when cancellation cut the
	// drain short.
	ErrSyncTimeout = errors.New("passcloud: commit daemon did not drain")
)

// Client is a provenance-aware cloud storage client. It holds no
// context.Context: every method that performs cloud I/O takes one
// explicitly, so each request is individually scoped and cancellable.
type Client struct {
	opts  Options
	cloud *cloud.Cloud // unsharded region; nil when sharded
	multi *cloud.Multi // multi-namespace region; nil when unsharded
	store core.Store
	sys   *pass.System
	// daemons holds the WAL commit daemons (one per shard; at most one
	// when unsharded).
	daemons []*s3sdbsqs.CommitDaemon
	// router and shardClouds bind shard indexes to namespaces when
	// sharded, for direct data operations (SafeDelete) and per-tenant
	// billing reads.
	router      *shard.Router
	shardClouds []*cloud.Cloud
	// shardStores lists the per-shard stores in shard order (one entry
	// when unsharded) for verification audits.
	shardStores []shard.Store
	// resharder is the lazily built migration controller (its crash
	// journal must survive across Resharder calls).
	resharder *Resharder
}

// New builds a client with its own simulated AWS region. To share one
// region between several clients, use NewRegion.
func New(opts Options) (*Client, error) {
	if sharded(opts) {
		return newShardedClient(cloud.NewMulti(cloud.Config{
			Seed:     opts.Seed,
			MaxDelay: opts.ConsistencyDelay,
		}), opts)
	}
	cl := cloud.New(cloud.Config{
		Seed:     opts.Seed,
		MaxDelay: opts.ConsistencyDelay,
	})
	return newClientOn(cl, opts)
}

// sharded reports whether opts needs the multi-namespace construction:
// more than one shard, or tenant isolation (which gives the tenant its
// own namespaces even unsharded).
func sharded(opts Options) bool { return opts.Shards > 1 || opts.Tenant != "" }

// Architecture returns the selected design.
func (c *Client) Architecture() Architecture { return c.opts.Architecture }

// Properties returns the architecture's Table 1 row.
func (c *Client) Properties() Properties {
	p := c.store.Properties()
	return Properties{
		Atomicity:      p.Atomicity,
		Consistency:    p.Consistency,
		CausalOrdering: p.CausalOrdering,
		EfficientQuery: p.EfficientQuery,
	}
}

// --- the PASS application surface -------------------------------------------

// Process is a handle on a simulated process whose syscalls are observed.
type Process struct {
	c *Client
	p *pass.Process
}

// ProcessSpec describes a process to execute.
type ProcessSpec struct {
	Name string
	Argv []string
	// Env is the captured environment; large environments produce the
	// >1 KB provenance records the paper's analysis features.
	Env string
}

// Exec starts a process. A nil parent starts a session root.
func (c *Client) Exec(parent *Process, spec ProcessSpec) *Process {
	var pp *pass.Process
	if parent != nil {
		pp = parent.p
	}
	return &Process{c: c, p: c.sys.Exec(pp, pass.ExecSpec{Name: spec.Name, Argv: spec.Argv, Env: spec.Env})}
}

// Ref returns the process's current provenance version.
func (p *Process) Ref() Ref { return toPublicRef(p.p.Ref()) }

// Read records that the process read path. Reads and writes are local
// PASS observations (no cloud I/O), so they take no context.
func (p *Process) Read(path string) error { return p.c.sys.Read(p.p, path) }

// Write replaces path's content, recording the dependency.
func (p *Process) Write(path string, data []byte) error {
	return p.c.sys.Write(p.p, path, data, pass.Truncate)
}

// Append extends path's content, recording the dependency.
func (p *Process) Append(path string, data []byte) error {
	return p.c.sys.Write(p.p, path, data, pass.Append)
}

// Close persists path: its data and provenance, with all unpersisted
// ancestors coalesced into one batch (ancestors first), flow through the
// storage architecture in a single flush.
func (p *Process) Close(ctx context.Context, path string) error {
	return p.c.sys.Close(ctx, p.p, path)
}

// PipeTo connects this process's output to q's input through a pipe,
// relating their provenance.
func (p *Process) PipeTo(q *Process) error { return p.c.sys.Pipe(p.p, q.p) }

// Exit marks the process finished.
func (p *Process) Exit() { p.c.sys.Exit(p.p) }

// Ingest stores a pre-existing data set (no process ancestry), like
// downloading a public data set into the cloud.
func (c *Client) Ingest(ctx context.Context, path string, data []byte) error {
	return c.sys.Ingest(ctx, path, data)
}

// Fetch downloads a shared object from the cloud into this client's local
// namespace (the paper's model: "download the data set to their local
// compute grid"). Local reads then bind to exactly the fetched version, so
// derivations made here connect to the ancestry other clients stored.
func (c *Client) Fetch(ctx context.Context, path string) (*Object, error) {
	obj, err := c.store.Get(ctx, prov.ObjectID(path))
	if err != nil {
		return nil, err
	}
	if err := c.sys.Attach(path, obj.Ref, obj.Data); err != nil {
		return nil, err
	}
	return &Object{
		Ref:     toPublicRef(obj.Ref),
		Data:    obj.Data,
		Records: toPublicRecords(obj.Records),
	}, nil
}

// syncRoundBudget bounds the commit-daemon drain when the caller's context
// carries no deadline of its own.
const syncRoundBudget = 50

// Sync drains everything toward the cloud: pending PASS versions, buffered
// client state, and (for the WAL architecture) the commit daemon. The
// drain honors ctx — cancellation or a deadline ends it with an error
// wrapping both ErrSyncTimeout and the context's error — and is otherwise
// bounded by a generous round budget, after which ErrSyncTimeout is
// returned rather than looping forever on a wedged queue.
func (c *Client) Sync(ctx context.Context) error {
	if err := c.sys.Sync(ctx); err != nil {
		return err
	}
	if err := core.SyncStore(ctx, c.store); err != nil {
		return err
	}
	if len(c.daemons) > 0 {
		for i := 0; i < syncRoundBudget; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w: %w", ErrSyncTimeout, err)
			}
			committed, pending := 0, 0
			for _, d := range c.daemons {
				n, err := d.RunOnce(ctx, true)
				if err != nil {
					return err
				}
				committed += n
				pending += d.PendingTransactions()
			}
			if committed == 0 && pending == 0 {
				return nil
			}
			c.Settle()
		}
		return ErrSyncTimeout
	}
	return nil
}

// Settle advances simulated time past the region's replication horizon so
// all replicas converge — every shard namespace at once when sharded.
// With ConsistencyDelay zero it is a no-op.
func (c *Client) Settle() {
	if c.multi != nil {
		c.multi.Settle()
		return
	}
	c.cloud.Settle()
}

// --- retrieval and queries ---------------------------------------------------

// Get retrieves the current version of path with verified provenance.
func (c *Client) Get(ctx context.Context, path string) (*Object, error) {
	obj, err := c.store.Get(ctx, prov.ObjectID(path))
	if err != nil {
		return nil, err
	}
	return &Object{
		Ref:     toPublicRef(obj.Ref),
		Data:    obj.Data,
		Records: toPublicRecords(obj.Records),
	}, nil
}

// Provenance returns the provenance of one object version (the paper's
// Q.1 unit).
func (c *Client) Provenance(ctx context.Context, ref Ref) ([]Record, error) {
	records, err := c.store.Provenance(ctx, toInternalRef(ref))
	if err != nil {
		return nil, err
	}
	return toPublicRecords(records), nil
}

// ProvenanceSeq streams the provenance of one object version, one record
// at a time. A non-nil error ends the sequence; breaking early is allowed.
func (c *Client) ProvenanceSeq(ctx context.Context, ref Ref) iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		records, err := c.store.Provenance(ctx, toInternalRef(ref))
		if err != nil {
			yield(Record{}, err)
			return
		}
		for _, r := range records {
			if !yield(toPublicRecord(r), nil) {
				return
			}
		}
	}
}

// OutputsOf finds the files written by instances of the named tool (Q.2).
// It compiles to the descriptor {Tool: tool, Type: "file", RefsOnly: true}
// with byte-identical cloud ops.
//
// Deprecated: use Search with a QuerySpec.
func (c *Client) OutputsOf(ctx context.Context, tool string) ([]Ref, error) {
	q, err := c.querier()
	if err != nil {
		return nil, err
	}
	refs, err := core.OutputsOf(ctx, q, tool)
	return toPublicRefs(refs), err
}

// DescendantsOfOutputs finds everything derived from the named tool's
// outputs (Q.3) — the paper's flawed-tool scenario. It compiles to the Q.2
// descriptor plus Direction: TraverseDescendants.
//
// Deprecated: use Search with a QuerySpec.
func (c *Client) DescendantsOfOutputs(ctx context.Context, tool string) ([]Ref, error) {
	q, err := c.querier()
	if err != nil {
		return nil, err
	}
	refs, err := core.DescendantsOfOutputs(ctx, q, tool)
	return toPublicRefs(refs), err
}

// Ancestors returns every object version in ref's ancestry. It compiles to
// the descriptor {Refs: [ref], Direction: TraverseAncestors}, which every
// backend answers from the repository's provenance graph — with the query
// cache enabled (default) the walk runs on the store's shared snapshot,
// zero cloud ops once warm; on the S3-only architecture a cold call scans.
//
// Deprecated: use Search with a QuerySpec.
func (c *Client) Ancestors(ctx context.Context, ref Ref) ([]Ref, error) {
	q, err := c.querier()
	if err != nil {
		return nil, err
	}
	refs, err := core.CollectRefs(q.Query(ctx, prov.QAncestors(toInternalRef(ref))))
	return toPublicRefs(refs), err
}

// AllProvenance retrieves the provenance of every object version (Q.1 over
// all objects), materialized as a map. For large repositories with
// Options.DisableQueryCache set, prefer AllProvenanceSeq, which then
// streams; with the cache enabled both share one resident snapshot.
//
// Deprecated: use Search with a zero QuerySpec.
func (c *Client) AllProvenance(ctx context.Context) (map[Ref][]Record, error) {
	q, err := c.querier()
	if err != nil {
		return nil, err
	}
	all, err := core.AllProvenance(ctx, q)
	if err != nil {
		return nil, err
	}
	out := make(map[Ref][]Record, len(all))
	for ref, records := range all {
		out[toPublicRef(ref)] = toPublicRecords(records)
	}
	return out, nil
}

// ProvenanceEntry is one object version's provenance, as yielded by
// AllProvenanceSeq.
type ProvenanceEntry struct {
	Ref     Ref
	Records []Record
}

// AllProvenanceSeq streams the provenance of every object version in the
// repository. A non-nil error ends the sequence (its entry is zero);
// breaking early is allowed.
//
// Memory behavior depends on Options.DisableQueryCache. With the cache
// enabled (default), entries are yielded from the repository snapshot —
// the graph is resident (shared with every other query), entries are
// merged one per subject, and a warm repeat costs zero cloud ops. With
// the cache disabled this is a live scan: one Select/LIST page and one
// item resident at a time, breaking early releases the scan, and on the
// S3-only architecture a subject whose records rode more than one carrier
// PUT may be yielded more than once.
func (c *Client) AllProvenanceSeq(ctx context.Context) iter.Seq2[ProvenanceEntry, error] {
	return func(yield func(ProvenanceEntry, error) bool) {
		q, err := c.querier()
		if err != nil {
			yield(ProvenanceEntry{}, err)
			return
		}
		for entry, err := range core.AllProvenanceSeq(ctx, q) {
			if err != nil {
				yield(ProvenanceEntry{}, err)
				return
			}
			pub := ProvenanceEntry{Ref: toPublicRef(entry.Ref), Records: toPublicRecords(entry.Records)}
			if !yield(pub, nil) {
				return
			}
		}
	}
}

func (c *Client) querier() (core.Querier, error) {
	q, ok := c.store.(core.Querier)
	if !ok {
		return nil, fmt.Errorf("passcloud: %s does not support queries", c.store.Name())
	}
	return q, nil
}

// --- accounting ---------------------------------------------------------------

// UsageSummary reports accumulated AWS usage and its January-2009 price.
type UsageSummary struct {
	// Ops is the total request count per service.
	S3Ops, SimpleDBOps, SQSOps int64
	// Stored is resident bytes per service.
	S3Stored, SimpleDBStored, SQSStored int64
	// TransferredIn/Out are bytes moved to/from the cloud.
	TransferredIn, TransferredOut int64
	// USD is the total bill (storage priced per month).
	USD float64
}

// Usage summarizes the client's cloud bill so far. Clients sharing a
// region share meters: this is the whole region's bill, every tenant
// and shard included. For one tenant's share, use TenantUsage.
func (c *Client) Usage() UsageSummary {
	if c.multi != nil {
		return usageFrom(c.multi.Combined())
	}
	return usageFrom(c.cloud.Usage())
}

// TenantUsage summarizes only this client's tenant: the sum of its shard
// namespaces' meters — the per-tenant billing key read the multi-tenant
// deployment accounts with. On an unsharded single-tenant client it
// equals Usage.
func (c *Client) TenantUsage() UsageSummary {
	if len(c.shardClouds) == 0 {
		return c.Usage()
	}
	var sum billing.Usage
	for _, cl := range c.shardClouds {
		sum = sum.Add(cl.Usage())
	}
	return usageFrom(sum)
}

// usageFrom converts a meter snapshot into the public summary.
func usageFrom(u billing.Usage) UsageSummary {
	cost := billing.Jan2009.Price(u)
	return UsageSummary{
		S3Ops:          u.Ops(billing.S3),
		SimpleDBOps:    u.Ops(billing.SimpleDB),
		SQSOps:         u.Ops(billing.SQS),
		S3Stored:       u.Storage(billing.S3),
		SimpleDBStored: u.Storage(billing.SimpleDB),
		SQSStored:      u.Storage(billing.SQS),
		TransferredIn:  u.BytesIn(billing.S3) + u.BytesIn(billing.SimpleDB) + u.BytesIn(billing.SQS),
		TransferredOut: u.BytesOut(billing.S3) + u.BytesOut(billing.SimpleDB) + u.BytesOut(billing.SQS),
		USD:            cost.Total(),
	}
}

func toPublicRefs(refs []prov.Ref) []Ref {
	out := make([]Ref, len(refs))
	for i, r := range refs {
		out[i] = toPublicRef(r)
	}
	return out
}
